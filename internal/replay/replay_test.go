package replay

import (
	"context"
	"math"
	"reflect"
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/geom"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/store"
	"repro/internal/trace"
	"repro/internal/world"
)

// syntheticResult builds a small run with a lead actor ahead of the
// ego, so the offline evaluator produces non-trivial estimates.
func syntheticResult(scn string, fpr float64, seed int64, collide bool) *sim.Result {
	tr := &trace.Trace{Meta: trace.Meta{
		Scenario: scn, FPR: fpr, Seed: seed, Dt: 0.01,
		Cameras: []string{"front120", "left", "right"},
	}}
	for i := 0; i < 60; i++ {
		t := float64(i) * 0.01
		tr.Rows = append(tr.Rows, trace.Row{
			Time: t,
			Ego: world.Agent{
				ID: world.EgoID, Pose: geom.Pose{Pos: geom.V(25*t, 0)},
				Speed: 25, Length: 4.6, Width: 1.9,
			},
			Actors: []world.Agent{
				{ID: "lead", Pose: geom.Pose{Pos: geom.V(30+10*t, 0)}, Speed: 10,
					Accel: -2, Length: 4.6, Width: 1.9},
			},
			CmdAccel: -1,
			Rates:    map[string]float64{"front120": fpr, "left": fpr, "right": fpr},
		})
	}
	res := &sim.Result{
		Trace:           tr,
		FramesProcessed: map[string]int{"front120": 6, "left": 6, "right": 6},
		MinBumperGap:    5 + float64(seed),
	}
	if collide {
		res.Collision = &trace.Collision{Time: 0.59, ActorID: "lead"}
		tr.Collision = res.Collision
	}
	return res
}

// seedStore archives a small two-scenario corpus: "hard" collides at
// FPR 1 (MRF 5), "easy" never collides (MRF <min).
func seedStore(t *testing.T) *store.Store {
	t.Helper()
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	for _, scn := range []string{"hard", "easy"} {
		for _, fpr := range []float64{1, 5} {
			for seed := int64(1); seed <= 2; seed++ {
				collide := scn == "hard" && fpr == 1 && seed == 1
				res := syntheticResult(scn, fpr, seed, collide)
				if _, _, err := st.Put(scn, store.KeyFor(scn, fpr, seed), res); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	return st
}

func TestRecordReplayDiffZeroDivergences(t *testing.T) {
	st := seedStore(t)
	rep, err := Run(context.Background(), st, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Summaries) != 8 {
		t.Fatalf("replayed %d runs, want 8", len(rep.Summaries))
	}
	if err := WriteBaselines(st, rep.Summaries); err != nil {
		t.Fatal(err)
	}
	base, err := LoadBaselines(st)
	if err != nil {
		t.Fatal(err)
	}
	again, err := Run(context.Background(), st, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if divs := Diff(base, again.Summaries); len(divs) != 0 {
		t.Fatalf("replay of unchanged store diverged: %v", divs)
	}
}

func TestDiffCatchesEveryDimension(t *testing.T) {
	st := seedStore(t)
	rep, err := Run(context.Background(), st, Options{})
	if err != nil {
		t.Fatal(err)
	}
	base := rep.Summaries

	perturb := func(f func(ss []Summary)) []Summary {
		cur := make([]Summary, len(base))
		copy(cur, base)
		f(cur)
		return cur
	}
	cases := []struct {
		name   string
		field  string
		modify func(ss []Summary)
	}{
		{"collision flip", "collided", func(ss []Summary) { ss[0].Collided = !ss[0].Collided }},
		{"min gap drift", "min-gap", func(ss []Summary) { ss[1].MinGap += 0.5 }},
		{"estimate drift", "max-est-fpr", func(ss []Summary) { ss[2].MaxEstFPR *= 1.01 }},
		{"sum drift", "max-sum-fpr", func(ss []Summary) { ss[3].MaxSumFPR += 1 }},
		{"alarm drift", "alarms", func(ss []Summary) { ss[4].Alarms += 3 }},
		{"row loss", "rows", func(ss []Summary) { ss[5].Rows-- }},
	}
	for _, tc := range cases {
		divs := Diff(base, perturb(tc.modify))
		if len(divs) == 0 {
			t.Errorf("%s: no divergence reported", tc.name)
			continue
		}
		found := false
		for _, d := range divs {
			if d.Field == tc.field {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: field %q absent from %v", tc.name, tc.field, divs)
		}
	}

	// Presence: an archived run without a baseline and vice versa.
	divs := Diff(base[1:], base)
	if len(divs) == 0 || divs[0].Field != "presence" {
		t.Errorf("unrecorded run: %v", divs)
	}
	divs = Diff(base, base[1:])
	found := false
	for _, d := range divs {
		if d.Field == "presence" && d.Current == "missing" {
			found = true
		}
	}
	if !found {
		t.Errorf("lost artifact not reported: %v", divs)
	}
}

func TestMRFDerivationAndOrdering(t *testing.T) {
	st := seedStore(t)
	rep, err := Run(context.Background(), st, Options{})
	if err != nil {
		t.Fatal(err)
	}
	mrfs := MRFOf(rep.Summaries)
	if mrfs["hard"] != 5 {
		t.Errorf("hard MRF = %v, want 5 (collided at 1, clean at 5)", mrfs["hard"])
	}
	if mrfs["easy"] != 0 {
		t.Errorf("easy MRF = %v, want 0 (<min)", mrfs["easy"])
	}
	if got := MRFOrdering(rep.Summaries); !reflect.DeepEqual(got, []string{"hard", "easy"}) {
		t.Errorf("ordering = %v", got)
	}

	// A collision appearing at the top rate flips the scenario to
	// unsafe and must surface as both an MRF and an ordering change.
	cur := make([]Summary, len(rep.Summaries))
	copy(cur, rep.Summaries)
	for i := range cur {
		if cur[i].Scenario == "easy" && cur[i].FPR == 5 && cur[i].Seed == 1 {
			cur[i].Collided = true
		}
	}
	divs := Diff(rep.Summaries, cur)
	var fields []string
	for _, d := range divs {
		fields = append(fields, d.Field)
	}
	joined := strings.Join(fields, ",")
	if !strings.Contains(joined, "mrf") || !strings.Contains(joined, "mrf-ordering") {
		t.Errorf("divergence fields = %v, want mrf + mrf-ordering", fields)
	}
	if v := MRFOf(cur)["easy"]; !math.IsInf(v, 1) {
		t.Errorf("easy MRF after top-rate collision = %v, want +Inf", v)
	}
}

func TestBaselineMergeSupersedes(t *testing.T) {
	st := seedStore(t)
	rep, err := Run(context.Background(), st, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteBaselines(st, rep.Summaries[:4]); err != nil {
		t.Fatal(err)
	}
	// Second write: remaining runs plus a superseded copy of run 0.
	edited := rep.Summaries[0]
	edited.Alarms += 7
	if err := WriteBaselines(st, append([]Summary{edited}, rep.Summaries[4:]...)); err != nil {
		t.Fatal(err)
	}
	base, err := LoadBaselines(st)
	if err != nil {
		t.Fatal(err)
	}
	if len(base) != len(rep.Summaries) {
		t.Fatalf("merged baselines hold %d runs, want %d", len(base), len(rep.Summaries))
	}
	found := false
	for _, s := range base {
		if s.Key == edited.Key {
			found = true
			if s.Alarms != edited.Alarms {
				t.Error("superseding write did not win")
			}
		}
	}
	if !found {
		t.Fatal("edited run missing from merged baselines")
	}
	for i := 1; i < len(base); i++ {
		a, b := base[i-1], base[i]
		if a.Scenario > b.Scenario {
			t.Fatalf("baselines unsorted: %s before %s", a.Scenario, b.Scenario)
		}
	}
}

// TestAlarmsFromRealTrace pins the alarm count against the real stack:
// a trace recorded below the scenario's requirement must raise alarms,
// one recorded far above must not.
func TestAlarmsFromRealTrace(t *testing.T) {
	if testing.Short() {
		t.Skip("real closed-loop simulation")
	}
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	sc, ok := scenario.Lookup(scenario.CutOutFast)
	if !ok {
		t.Fatal("cut-out-fast not registered")
	}
	eng := engine.New(engine.Options{Workers: 2, Store: st})
	defer eng.Close()
	for _, fpr := range []float64{1, 30} {
		if _, err := eng.Run(context.Background(), engine.Job{Scenario: sc, FPR: fpr, Seed: 1}); err != nil {
			t.Fatal(err)
		}
	}
	eng.Drain() // single Runs archive asynchronously
	rep, err := Run(context.Background(), st, Options{})
	if err != nil {
		t.Fatal(err)
	}
	byFPR := map[float64]Summary{}
	for _, s := range rep.Summaries {
		byFPR[s.FPR] = s
	}
	if byFPR[1].Alarms == 0 {
		t.Error("1-FPR trace raised no alarms; the scenario's requirement exceeds 1")
	}
	if byFPR[30].Alarms != 0 {
		t.Errorf("30-FPR trace raised %d alarms, want 0", byFPR[30].Alarms)
	}
	if byFPR[30].MaxEstFPR <= 1 {
		t.Errorf("MaxEstFPR = %v, want > 1", byFPR[30].MaxEstFPR)
	}
}
