// Package replay is the differential replay regression harness: it
// feeds traces archived in a persistent store (internal/store) back
// through the paper's offline pre-deployment evaluator (§3.1) and
// diffs what it finds against recorded baselines. Replaying a stored
// trace costs one evaluator pass instead of a closed-loop simulation,
// so a full regression check over a corpus runs orders of magnitude
// faster than re-simulating it — the monitoring-by-comparison posture
// of "Monitoring of Perception Systems" applied to this repo's own
// stack.
//
// The quantities diffed per archived run: collision outcome (time and
// actor), closest bumper approach, the offline estimator's peak
// per-camera and summed FPR demands, and the safety-check alarm count
// (instants where a camera's recorded operating rate fell below its
// estimated requirement). Across runs, the per-scenario minimum
// required FPR is re-derived from the stored collision outcomes and
// the resulting scenario ordering — Table 1's difficulty ranking — is
// diffed as a whole.
package replay

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/store"
	"repro/internal/trace"
)

// Summary is the replayed measurement of one archived run — every
// field participates in the differential check.
type Summary struct {
	Key      store.Key `json:"key"`
	Scenario string    `json:"scenario"`
	FPR      float64   `json:"fpr"`
	Seed     int64     `json:"seed"`
	Rows     int       `json:"rows"`

	Collided       bool    `json:"collided"`
	CollisionTime  float64 `json:"collision_time,omitempty"`
	CollisionActor string  `json:"collision_actor,omitempty"`
	MinGap         float64 `json:"min_gap"`
	MinGapInfinite bool    `json:"min_gap_infinite,omitempty"`
	EgoStopped     bool    `json:"ego_stopped,omitempty"`

	MaxEstFPR float64 `json:"max_est_fpr"`
	MaxSumFPR float64 `json:"max_sum_fpr"`
	Alarms    int     `json:"alarms"`
}

// Options configures a replay pass.
type Options struct {
	// EvalEvery is the offline evaluation period in seconds (default
	// 0.1, the repo-wide default). Baselines and replays must use the
	// same period or every estimate diverges trivially.
	EvalEvery float64
	// Workers bounds concurrent trace loads + evaluations; 0 defaults
	// to runtime.GOMAXPROCS(0).
	Workers int
	// Scenarios restricts the pass to these scenario names; empty
	// replays every archived run.
	Scenarios []string
}

func (o Options) withDefaults() Options {
	if o.EvalEvery <= 0 {
		o.EvalEvery = 0.1
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	return o
}

// Report is a completed replay pass.
type Report struct {
	Summaries []Summary // store-entry order: (scenario, FPR, seed)
	Wall      time.Duration
}

// Summarize replays one archived run: every summary field is
// re-derived from the stored trace itself — never copied from the
// manifest — so a regression anywhere in the pipeline that produced
// or reads the trace shows up as a divergence. (A manifest-copied
// field would compare the manifest to itself and could never fire.)
func Summarize(e store.Entry, tr *trace.Trace, opt Options) (Summary, error) {
	opt = opt.withDefaults()
	s := Summary{
		Key:      e.Key,
		Scenario: e.Scenario,
		FPR:      e.Key.FPR,
		Seed:     e.Key.Seed,
		Rows:     tr.Len(),
	}
	s.MinGap, s.MinGapInfinite = minGapFromTrace(tr)
	for _, row := range tr.Rows {
		if row.Ego.Speed == 0 {
			s.EgoStopped = true
			break
		}
	}
	if tr.Collision != nil {
		s.Collided = true
		s.CollisionTime = tr.Collision.Time
		s.CollisionActor = tr.Collision.ActorID
	}
	est := core.NewEstimator()
	off, err := est.EvaluateTrace(tr, core.OfflineOptions{EvalEvery: opt.EvalEvery})
	if err != nil {
		return s, fmt.Errorf("replay: %s fpr %g seed %d: %w", e.Scenario, e.Key.FPR, e.Key.Seed, err)
	}
	s.MaxEstFPR = off.MaxFPR()
	s.MaxSumFPR = off.MaxSumFPR()
	s.Alarms = countAlarms(tr, off)
	return s, nil
}

// minGapFromTrace re-derives the closest bumper approach from the
// recorded rows: for every actor laterally within a corridor of the
// ego (|perpendicular offset| <= 2.2 m in the ego frame), the
// along-heading distance minus the half-lengths. This is the trace's
// own view of sim.Result.MinBumperGap — computed in the ego frame
// rather than road Frenet coordinates, since the trace does not carry
// the road — and it is what the regression diff compares.
func minGapFromTrace(tr *trace.Trace) (gap float64, infinite bool) {
	gap = math.Inf(1)
	for _, row := range tr.Rows {
		fwd := row.Ego.Pose.Forward()
		for _, a := range row.Actors {
			rel := a.Pose.Pos.Sub(row.Ego.Pose.Pos)
			along := rel.Dot(fwd)
			lat := rel.Sub(fwd.Scale(along))
			if lat.Len() > 2.2 {
				continue
			}
			if g := math.Abs(along) - (row.Ego.Length+a.Length)/2; g < gap {
				gap = g
			}
		}
	}
	if math.IsInf(gap, 1) {
		return 0, true
	}
	return gap, false
}

// countAlarms counts (instant, camera) pairs where the recorded
// operating rate fell below the estimated requirement — the §3.2
// safety check evaluated post hoc over the archived trace.
func countAlarms(tr *trace.Trace, off *core.OfflineResult) int {
	alarms := 0
	for _, pt := range off.Points {
		i := tr.IndexAt(pt.Time)
		for cam, required := range pt.FPR {
			if tr.OperatingRate(i, cam)+1e-9 < required {
				alarms++
			}
		}
	}
	return alarms
}

// Run replays every matching archived run concurrently and returns
// their summaries in store-entry order.
func Run(ctx context.Context, st *store.Store, opt Options) (*Report, error) {
	opt = opt.withDefaults()
	startAt := time.Now()
	entries := st.Entries()
	if len(opt.Scenarios) > 0 {
		want := make(map[string]bool, len(opt.Scenarios))
		for _, name := range opt.Scenarios {
			want[name] = true
		}
		kept := entries[:0]
		for _, e := range entries {
			if want[e.Scenario] {
				kept = append(kept, e)
			}
		}
		entries = kept
	}

	summaries := make([]Summary, len(entries))
	errs := make([]error, len(entries))
	sem := make(chan struct{}, opt.Workers)
	var wg sync.WaitGroup
	for i, e := range entries {
		wg.Add(1)
		go func(i int, e store.Entry) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			if err := ctx.Err(); err != nil {
				errs[i] = err
				return
			}
			tr, err := st.Trace(e)
			if err != nil {
				errs[i] = err
				return
			}
			summaries[i], errs[i] = Summarize(e, tr, opt)
		}(i, e)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return &Report{Summaries: summaries, Wall: time.Since(startAt)}, nil
}

// BaselinePath is where a store keeps its recorded baselines.
func BaselinePath(st *store.Store) string {
	return filepath.Join(st.Dir(), "baselines.jsonl")
}

// WriteBaselines merges summaries into the store's baseline file
// (new keys appended, existing keys superseded) and rewrites it
// atomically in (scenario, FPR, seed) order.
func WriteBaselines(st *store.Store, summaries []Summary) error {
	merged, err := LoadBaselines(st)
	if err != nil && !os.IsNotExist(err) {
		return err
	}
	byKey := make(map[store.Key]int, len(merged))
	for i, s := range merged {
		byKey[s.Key] = i
	}
	for _, s := range summaries {
		if i, ok := byKey[s.Key]; ok {
			merged[i] = s
		} else {
			byKey[s.Key] = len(merged)
			merged = append(merged, s)
		}
	}
	sortSummaries(merged)

	var b strings.Builder
	for _, s := range merged {
		line, err := json.Marshal(s)
		if err != nil {
			return fmt.Errorf("replay: baseline %s: %w", s.Scenario, err)
		}
		b.Write(line)
		b.WriteByte('\n')
	}
	path := BaselinePath(st)
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-baselines-*")
	if err != nil {
		return fmt.Errorf("replay: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.WriteString(b.String()); err != nil {
		tmp.Close()
		return fmt.Errorf("replay: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("replay: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("replay: %w", err)
	}
	return nil
}

// LoadBaselines reads the store's recorded baselines. A missing file
// returns an os.IsNotExist error, which "record" callers treat as an
// empty baseline set.
func LoadBaselines(st *store.Store) ([]Summary, error) {
	data, err := os.ReadFile(BaselinePath(st))
	if err != nil {
		return nil, err
	}
	var out []Summary
	for i, line := range strings.Split(string(data), "\n") {
		if strings.TrimSpace(line) == "" {
			continue
		}
		var s Summary
		if err := json.Unmarshal([]byte(line), &s); err != nil {
			return nil, fmt.Errorf("replay: baselines line %d: %w", i+1, err)
		}
		out = append(out, s)
	}
	return out, nil
}

func sortSummaries(ss []Summary) {
	sort.Slice(ss, func(i, j int) bool {
		a, b := ss[i], ss[j]
		if a.Scenario != b.Scenario {
			return a.Scenario < b.Scenario
		}
		if a.FPR != b.FPR {
			return a.FPR < b.FPR
		}
		if a.Seed != b.Seed {
			return a.Seed < b.Seed
		}
		return a.Key.SimVersion < b.Key.SimVersion
	})
}

// Divergence is one baseline/replay disagreement.
type Divergence struct {
	Scenario string
	FPR      float64
	Seed     int64
	Field    string
	Baseline string
	Current  string
}

// String renders the divergence for reports.
func (d Divergence) String() string {
	point := ""
	switch d.Field {
	case "mrf":
		point = d.Scenario
	case "mrf-ordering":
		point = "corpus"
	default:
		point = fmt.Sprintf("%s fpr %g seed %d", d.Scenario, d.FPR, d.Seed)
	}
	return fmt.Sprintf("%s: %s: baseline %s, replay %s", point, d.Field, d.Baseline, d.Current)
}

// floatEq tolerates only representation-level noise: replays recompute
// with the same code over the same bytes, so anything beyond relative
// 1e-9 is a real regression.
func floatEq(a, b float64) bool {
	if a == b {
		return true
	}
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= 1e-9*math.Max(scale, 1)
}

// Diff compares a replay pass against recorded baselines, per run and
// then across runs (the MRF scenario ordering). Runs present on only
// one side are divergences too: a baseline without an artifact means
// the store lost data, an artifact without a baseline means the
// baselines were never refreshed after recording.
func Diff(baseline, current []Summary) []Divergence {
	var out []Divergence
	base := make(map[store.Key]Summary, len(baseline))
	for _, s := range baseline {
		base[s.Key] = s
	}
	seen := make(map[store.Key]bool, len(current))
	for _, cur := range current {
		seen[cur.Key] = true
		b, ok := base[cur.Key]
		if !ok {
			out = append(out, Divergence{Scenario: cur.Scenario, FPR: cur.FPR, Seed: cur.Seed,
				Field: "presence", Baseline: "absent", Current: "archived"})
			continue
		}
		out = append(out, diffRun(b, cur)...)
	}
	for _, b := range baseline {
		if !seen[b.Key] {
			out = append(out, Divergence{Scenario: b.Scenario, FPR: b.FPR, Seed: b.Seed,
				Field: "presence", Baseline: "recorded", Current: "missing"})
		}
	}
	out = append(out, diffMRF(baseline, current)...)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Scenario != b.Scenario {
			return a.Scenario < b.Scenario
		}
		if a.FPR != b.FPR {
			return a.FPR < b.FPR
		}
		if a.Seed != b.Seed {
			return a.Seed < b.Seed
		}
		return a.Field < b.Field
	})
	return out
}

func diffRun(b, cur Summary) []Divergence {
	var out []Divergence
	add := func(field, baseVal, curVal string) {
		out = append(out, Divergence{Scenario: cur.Scenario, FPR: cur.FPR, Seed: cur.Seed,
			Field: field, Baseline: baseVal, Current: curVal})
	}
	if b.Rows != cur.Rows {
		add("rows", fmt.Sprint(b.Rows), fmt.Sprint(cur.Rows))
	}
	if b.Collided != cur.Collided {
		add("collided", fmt.Sprint(b.Collided), fmt.Sprint(cur.Collided))
	} else if b.Collided {
		if !floatEq(b.CollisionTime, cur.CollisionTime) {
			add("collision-time", fmt.Sprintf("%.3f", b.CollisionTime), fmt.Sprintf("%.3f", cur.CollisionTime))
		}
		if b.CollisionActor != cur.CollisionActor {
			add("collision-actor", b.CollisionActor, cur.CollisionActor)
		}
	}
	if b.MinGapInfinite != cur.MinGapInfinite || (!b.MinGapInfinite && !floatEq(b.MinGap, cur.MinGap)) {
		add("min-gap", gapString(b), gapString(cur))
	}
	if b.EgoStopped != cur.EgoStopped {
		add("ego-stopped", fmt.Sprint(b.EgoStopped), fmt.Sprint(cur.EgoStopped))
	}
	if !floatEq(b.MaxEstFPR, cur.MaxEstFPR) {
		add("max-est-fpr", fmt.Sprintf("%.6f", b.MaxEstFPR), fmt.Sprintf("%.6f", cur.MaxEstFPR))
	}
	if !floatEq(b.MaxSumFPR, cur.MaxSumFPR) {
		add("max-sum-fpr", fmt.Sprintf("%.6f", b.MaxSumFPR), fmt.Sprintf("%.6f", cur.MaxSumFPR))
	}
	if b.Alarms != cur.Alarms {
		add("alarms", fmt.Sprint(b.Alarms), fmt.Sprint(cur.Alarms))
	}
	return out
}

func gapString(s Summary) string {
	if s.MinGapInfinite {
		return "+Inf"
	}
	return fmt.Sprintf("%.3f", s.MinGap)
}

// MRFOf re-derives each scenario's minimum required FPR from stored
// collision outcomes, using the paper's definition over the rates the
// corpus actually holds: the lowest tested rate at and above which no
// seed collided; 0 encodes "<lowest tested"; +Inf means unsafe even at
// the highest tested rate.
func MRFOf(summaries []Summary) map[string]float64 {
	type point struct {
		fpr      float64
		collided bool
	}
	byScenario := make(map[string][]point)
	for _, s := range summaries {
		byScenario[s.Scenario] = append(byScenario[s.Scenario], point{s.FPR, s.Collided})
	}
	out := make(map[string]float64, len(byScenario))
	for name, pts := range byScenario {
		collidedAt := make(map[float64]bool)
		fprs := make([]float64, 0, len(pts))
		seen := make(map[float64]bool)
		for _, p := range pts {
			if p.collided {
				collidedAt[p.fpr] = true
			}
			if !seen[p.fpr] {
				seen[p.fpr] = true
				fprs = append(fprs, p.fpr)
			}
		}
		sort.Float64s(fprs)
		mrf := 0.0
		for i := len(fprs) - 1; i >= 0; i-- {
			if collidedAt[fprs[i]] {
				if i == len(fprs)-1 {
					mrf = math.Inf(1)
				} else {
					mrf = fprs[i+1]
				}
				break
			}
		}
		out[name] = mrf
	}
	return out
}

// MRFOrdering ranks scenarios by descending re-derived MRF (ties by
// name) — the corpus difficulty ordering Table 1 implies.
func MRFOrdering(summaries []Summary) []string {
	mrfs := MRFOf(summaries)
	names := make([]string, 0, len(mrfs))
	for name := range mrfs {
		names = append(names, name)
	}
	sort.Slice(names, func(i, j int) bool {
		a, b := names[i], names[j]
		if mrfs[a] != mrfs[b] {
			return mrfs[a] > mrfs[b]
		}
		return a < b
	})
	return names
}

// diffMRF compares per-scenario MRFs and the overall ordering.
func diffMRF(baseline, current []Summary) []Divergence {
	var out []Divergence
	bm, cm := MRFOf(baseline), MRFOf(current)
	for name, bv := range bm {
		if cv, ok := cm[name]; ok && bv != cv && !(math.IsInf(bv, 1) && math.IsInf(cv, 1)) {
			out = append(out, Divergence{Scenario: name, Field: "mrf",
				Baseline: mrfString(bv), Current: mrfString(cv)})
		}
	}
	bo, co := MRFOrdering(baseline), MRFOrdering(current)
	if strings.Join(bo, ",") != strings.Join(co, ",") {
		out = append(out, Divergence{Field: "mrf-ordering",
			Baseline: strings.Join(bo, " > "), Current: strings.Join(co, " > ")})
	}
	return out
}

func mrfString(v float64) string {
	if v == 0 {
		return "<min"
	}
	if math.IsInf(v, 1) {
		return "unsafe"
	}
	return fmt.Sprintf("%g", v)
}
