package replay

import (
	"context"
	"testing"

	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/scenario"
	"repro/internal/store"
)

// benchScenario is a fixed, collision-free Table-1 point so every
// iteration does the same work.
const (
	benchFPR  = 30.0
	benchSeed = int64(1)
)

// benchRecordedStore records the benchmark points and migrates the
// objects to the requested on-disk format, so format-sensitive
// subbenchmarks compare decoders over identical content.
func benchRecordedStore(b *testing.B, seeds int, format store.Format) (*store.Store, scenario.Scenario, []engine.Job) {
	b.Helper()
	sc, ok := scenario.Lookup(scenario.CutOut)
	if !ok {
		b.Fatal("cut-out not registered")
	}
	st, err := store.Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { st.Close() })
	var jobs []engine.Job
	for seed := int64(1); seed <= int64(seeds); seed++ {
		jobs = append(jobs, engine.Job{Scenario: sc, FPR: benchFPR, Seed: seed})
	}
	eng := engine.New(engine.Options{Store: st})
	defer eng.Close()
	if _, err := eng.RunBatch(context.Background(), jobs); err != nil {
		b.Fatal(err)
	}
	if _, err := st.Migrate(format); err != nil {
		b.Fatal(err)
	}
	return st, sc, jobs
}

// BenchmarkReplayVsSimulate is the headline speed claim of the replay
// harness: re-deriving a run's regression summary from its archived
// trace versus re-simulating the point from scratch, and the disk
// tier's Get through the binary ZYT decoder versus the legacy
// gzip-JSONL decoder over identical archived content.
func BenchmarkReplayVsSimulate(b *testing.B) {
	b.Run("Simulate", func(b *testing.B) {
		sc, _ := scenario.Lookup(scenario.CutOut)
		for i := 0; i < b.N; i++ {
			if _, err := metrics.RunScenario(sc, benchFPR, benchSeed); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Replay", func(b *testing.B) {
		st, _, _ := benchRecordedStore(b, 1, store.FormatZYT)
		entry := st.Entries()[0]
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tr, err := st.Trace(entry)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := Summarize(entry, tr, Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	diskGet := func(format store.Format) func(b *testing.B) {
		return func(b *testing.B) {
			st, _, _ := benchRecordedStore(b, 1, format)
			key := store.KeyFor(scenario.CutOut, benchFPR, benchSeed)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, ok, err := st.Get(key); !ok || err != nil {
					b.Fatalf("ok=%v err=%v", ok, err)
				}
			}
		}
	}
	b.Run("DiskGetZYT", diskGet(store.FormatZYT))
	b.Run("DiskGetJSONL", diskGet(store.FormatJSONL))
}

// BenchmarkMRFSearch measures a full minimum-required-FPR search cold
// (every point simulated) versus against a warm store, where collision
// waves answer from the manifest summary alone — no simulation and no
// trace decode.
func BenchmarkMRFSearch(b *testing.B) {
	const seeds = 2
	sc, _ := scenario.Lookup(scenario.CutOut)
	grid := metrics.DefaultFPRGrid()
	b.Run("ColdSimulate", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			eng := engine.New(engine.Options{})
			if _, err := metrics.FindMRFContext(context.Background(), eng, sc, grid, seeds); err != nil {
				b.Fatal(err)
			}
			eng.Close()
		}
	})
	b.Run("WarmManifest", func(b *testing.B) {
		st, err := store.Open(b.TempDir())
		if err != nil {
			b.Fatal(err)
		}
		defer st.Close()
		warm := engine.New(engine.Options{Store: st})
		if _, err := metrics.FindMRFContext(context.Background(), warm, sc, grid, seeds); err != nil {
			b.Fatal(err)
		}
		warm.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			eng := engine.New(engine.Options{Store: st})
			m, err := metrics.FindMRFContext(context.Background(), eng, sc, grid, seeds)
			if err != nil {
				b.Fatal(err)
			}
			if m.Value != 2 {
				b.Fatalf("MRF = %v, want 2", m.Value)
			}
			eng.Close()
		}
	})
}

// BenchmarkPersistentWarmStart measures a whole campaign against a
// warm store on a cold engine (every point a disk hit) versus the same
// campaign simulated fresh — the cross-process warm-start the store
// exists for.
func BenchmarkPersistentWarmStart(b *testing.B) {
	const seeds = 4
	b.Run("ColdSimulate", func(b *testing.B) {
		sc, _ := scenario.Lookup(scenario.CutOut)
		var jobs []engine.Job
		for seed := int64(1); seed <= seeds; seed++ {
			jobs = append(jobs, engine.Job{Scenario: sc, FPR: benchFPR, Seed: seed})
		}
		for i := 0; i < b.N; i++ {
			eng := engine.New(engine.Options{})
			if _, err := eng.RunBatch(context.Background(), jobs); err != nil {
				b.Fatal(err)
			}
			eng.Close()
		}
	})
	b.Run("WarmDisk", func(b *testing.B) {
		st, _, jobs := benchRecordedStore(b, seeds, store.FormatZYT)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// A new engine per iteration: the memory cache starts empty,
			// so every point exercises the persistent tier.
			eng := engine.New(engine.Options{Store: st})
			br, err := eng.RunBatch(context.Background(), jobs)
			if err != nil {
				b.Fatal(err)
			}
			if br.Stats.DiskHits != len(jobs) {
				b.Fatalf("stats = %+v, want all disk hits", br.Stats)
			}
			eng.Close()
		}
	})
}
