package plot

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSparklineBasic(t *testing.T) {
	s := Sparkline([]float64{0, 1, 2, 3, 4, 5, 6, 7})
	if len([]rune(s)) != 8 {
		t.Fatalf("length = %d", len([]rune(s)))
	}
	runes := []rune(s)
	if runes[0] != '▁' || runes[7] != '█' {
		t.Errorf("sparkline = %q", s)
	}
}

func TestSparklineEdgeCases(t *testing.T) {
	if Sparkline(nil) != "" {
		t.Error("empty input")
	}
	// Constant series: all glyphs identical.
	s := []rune(Sparkline([]float64{5, 5, 5}))
	if s[0] != s[1] || s[1] != s[2] {
		t.Errorf("constant series = %q", string(s))
	}
	// All-NaN series: spaces.
	if got := Sparkline([]float64{math.NaN(), math.NaN()}); strings.TrimSpace(got) != "" {
		t.Errorf("NaN series = %q", got)
	}
	// Mixed NaN renders as a space.
	got := []rune(Sparkline([]float64{1, math.NaN(), 2}))
	if got[1] != ' ' {
		t.Errorf("NaN cell = %q", string(got))
	}
}

func TestSparklineLengthQuick(t *testing.T) {
	f := func(vals []float64) bool {
		return len([]rune(Sparkline(vals))) == len(vals)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDownsamplePreservesPeak(t *testing.T) {
	// A single spike in a flat series must survive downsampling.
	vals := make([]float64, 1000)
	vals[637] = 100
	ds := Downsample(vals, 50)
	if len(ds) != 50 {
		t.Fatalf("downsampled length = %d", len(ds))
	}
	found := false
	for _, v := range ds {
		if v == 100 {
			found = true
		}
	}
	if !found {
		t.Error("peak lost in downsampling")
	}
}

func TestDownsampleShortInput(t *testing.T) {
	vals := []float64{1, 2, 3}
	if got := Downsample(vals, 10); len(got) != 3 {
		t.Errorf("short input resampled: %v", got)
	}
	if got := Downsample(vals, 0); len(got) != 3 {
		t.Errorf("zero width resampled: %v", got)
	}
}

func TestLineRendering(t *testing.T) {
	var sb strings.Builder
	Line(&sb, "front", []float64{1, 0.5, 0.1, 0.5, 1}, 5)
	out := sb.String()
	if !strings.Contains(out, "front") || !strings.Contains(out, "0.1") {
		t.Errorf("line = %q", out)
	}
	sb.Reset()
	Line(&sb, "empty", []float64{math.NaN()}, 5)
	if !strings.Contains(sb.String(), "no data") {
		t.Errorf("empty line = %q", sb.String())
	}
}
