// Package plot renders numeric series as terminal-friendly sparklines
// and ASCII line charts, used by the experiment generators to
// approximate the paper's figures in text output.
package plot

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// sparkRunes are the eight block glyphs used by Sparkline, low to high.
var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders the series as a one-line bar sparkline scaled to
// [min, max] of the data. Empty input yields an empty string; NaN
// samples render as spaces.
func Sparkline(values []float64) string {
	if len(values) == 0 {
		return ""
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range values {
		if math.IsNaN(v) {
			continue
		}
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	if math.IsInf(lo, 1) {
		return strings.Repeat(" ", len(values))
	}
	span := hi - lo
	var sb strings.Builder
	for _, v := range values {
		if math.IsNaN(v) {
			sb.WriteByte(' ')
			continue
		}
		idx := 0
		if span > 0 {
			idx = int((v - lo) / span * float64(len(sparkRunes)-1))
		}
		if idx < 0 {
			idx = 0
		}
		if idx >= len(sparkRunes) {
			idx = len(sparkRunes) - 1
		}
		sb.WriteRune(sparkRunes[idx])
	}
	return sb.String()
}

// Downsample reduces a series to at most n points by taking the extreme
// value (farthest from the series mean) inside each bucket, preserving
// the peaks a plain stride would miss.
func Downsample(values []float64, n int) []float64 {
	if n <= 0 || len(values) <= n {
		return values
	}
	mean := 0.0
	cnt := 0
	for _, v := range values {
		if !math.IsNaN(v) {
			mean += v
			cnt++
		}
	}
	if cnt > 0 {
		mean /= float64(cnt)
	}
	out := make([]float64, 0, n)
	bucket := float64(len(values)) / float64(n)
	for i := 0; i < n; i++ {
		start := int(float64(i) * bucket)
		end := int(float64(i+1) * bucket)
		if end > len(values) {
			end = len(values)
		}
		if start >= end {
			continue
		}
		best := values[start]
		for _, v := range values[start:end] {
			if math.IsNaN(best) || (!math.IsNaN(v) && math.Abs(v-mean) > math.Abs(best-mean)) {
				best = v
			}
		}
		out = append(out, best)
	}
	return out
}

// Line writes a labeled sparkline with its min/max range.
func Line(w io.Writer, label string, values []float64, width int) {
	ds := Downsample(values, width)
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range values {
		if math.IsNaN(v) {
			continue
		}
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	if math.IsInf(lo, 1) {
		fmt.Fprintf(w, "%-12s (no data)\n", label)
		return
	}
	fmt.Fprintf(w, "%-12s %s  [%.3g .. %.3g]\n", label, Sparkline(ds), lo, hi)
}
