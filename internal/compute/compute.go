// Package compute reproduces the paper's Figure 1: the expected
// throughput demand of state-of-the-art camera perception versus the
// throughput offered by in-vehicle SoCs. The paper estimates TOPS
// assuming the MLPerf SSD-Large object-detection model runs on
// 1200x1200 frames from all cameras at 30 FPR, inflated by 20% for the
// additional camera models (lane detection, free space, occlusion) that
// reuse extracted features.
package compute

import "fmt"

// PerceptionModel describes one per-frame perception workload.
type PerceptionModel struct {
	Name        string
	OpsPerFrame float64 // operations per processed frame
}

// SSDLarge is the MLPerf SSD-Large (SSD-ResNet34) single-stream
// detection workload at 1200x1200 input, ~433 GFLOPs per frame.
func SSDLarge() PerceptionModel {
	return PerceptionModel{Name: "ssd-large-1200", OpsPerFrame: 433e9}
}

// SoC describes an in-vehicle computer's advertised inference
// throughput.
type SoC struct {
	Name string
	TOPS float64
}

// Xavier is the NVIDIA DRIVE AGX Xavier SoC (~32 INT8 TOPS).
func Xavier() SoC { return SoC{Name: "drive-agx-xavier", TOPS: 32} }

// Orin is the NVIDIA Jetson/DRIVE AGX Orin SoC (~275 INT8 TOPS).
func Orin() SoC { return SoC{Name: "jetson-agx-orin", TOPS: 275} }

// DemandConfig parameterizes the Figure-1 demand curve.
type DemandConfig struct {
	Model          PerceptionModel
	Cameras        int
	FPR            float64 // frames per second per camera
	ExtraModelFrac float64 // additional camera-model work (paper: 0.20)
}

// DefaultDemand is the paper's configuration: 12 cameras, 30 FPR,
// SSD-Large, +20%.
func DefaultDemand() DemandConfig {
	return DemandConfig{Model: SSDLarge(), Cameras: 12, FPR: 30, ExtraModelFrac: 0.20}
}

// TOPS returns the aggregate demand in tera-operations per second.
func (d DemandConfig) TOPS() float64 {
	return d.Model.OpsPerFrame * float64(d.Cameras) * d.FPR * (1 + d.ExtraModelFrac) / 1e12
}

// PerCameraTOPS returns the demand contributed by each camera.
func (d DemandConfig) PerCameraTOPS() float64 {
	if d.Cameras == 0 {
		return 0
	}
	return d.TOPS() / float64(d.Cameras)
}

// Utilization returns demand/capacity for the SoC (>1 = over-subscribed).
func (d DemandConfig) Utilization(s SoC) float64 {
	if s.TOPS <= 0 {
		return 0
	}
	return d.TOPS() / s.TOPS
}

// MaxCameras returns the largest camera count the SoC can serve at the
// configured per-camera rate.
func (d DemandConfig) MaxCameras(s SoC) int {
	per := d.Model.OpsPerFrame * d.FPR * (1 + d.ExtraModelFrac) / 1e12
	if per <= 0 {
		return 0
	}
	return int(s.TOPS / per)
}

// MaxFPRPerCamera returns the highest uniform per-camera rate the SoC
// sustains for the configured camera count.
func (d DemandConfig) MaxFPRPerCamera(s SoC) float64 {
	perFrame := d.Model.OpsPerFrame * float64(d.Cameras) * (1 + d.ExtraModelFrac) / 1e12
	if perFrame <= 0 {
		return 0
	}
	return s.TOPS / perFrame
}

// CurvePoint is one camera-count sample of the Figure-1 demand curve.
type CurvePoint struct {
	Cameras int
	TOPS    float64
}

// DemandCurve returns demand for camera counts 1..maxCameras.
func (d DemandConfig) DemandCurve(maxCameras int) []CurvePoint {
	out := make([]CurvePoint, 0, maxCameras)
	for n := 1; n <= maxCameras; n++ {
		c := d
		c.Cameras = n
		out = append(out, CurvePoint{Cameras: n, TOPS: c.TOPS()})
	}
	return out
}

// Validate reports configuration errors.
func (d DemandConfig) Validate() error {
	if d.Model.OpsPerFrame <= 0 {
		return fmt.Errorf("compute: non-positive ops per frame")
	}
	if d.Cameras < 0 {
		return fmt.Errorf("compute: negative camera count")
	}
	if d.FPR < 0 {
		return fmt.Errorf("compute: negative FPR")
	}
	if d.ExtraModelFrac < 0 {
		return fmt.Errorf("compute: negative extra-model fraction")
	}
	return nil
}
