package compute

import (
	"math"
	"testing"
)

func TestFigure1Headline(t *testing.T) {
	// The paper's motivation: 12-camera perception demand exceeds a
	// DRIVE AGX Xavier but fits inside a Jetson AGX Orin.
	d := DefaultDemand()
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	demand := d.TOPS()
	if demand <= Xavier().TOPS {
		t.Errorf("demand %v TOPS should exceed Xavier (%v)", demand, Xavier().TOPS)
	}
	if demand >= Orin().TOPS {
		t.Errorf("demand %v TOPS should fit within Orin (%v)", demand, Orin().TOPS)
	}
}

func TestDemandArithmetic(t *testing.T) {
	d := DefaultDemand()
	// 433e9 * 12 * 30 * 1.2 / 1e12 = 187.056 TOPS.
	if math.Abs(d.TOPS()-187.056) > 0.01 {
		t.Errorf("TOPS = %v, want 187.056", d.TOPS())
	}
	if math.Abs(d.PerCameraTOPS()-187.056/12) > 0.01 {
		t.Errorf("per camera = %v", d.PerCameraTOPS())
	}
}

func TestUtilization(t *testing.T) {
	d := DefaultDemand()
	if u := d.Utilization(Xavier()); u <= 1 {
		t.Errorf("Xavier utilization = %v, want > 1", u)
	}
	if u := d.Utilization(Orin()); u >= 1 {
		t.Errorf("Orin utilization = %v, want < 1", u)
	}
	if u := d.Utilization(SoC{TOPS: 0}); u != 0 {
		t.Errorf("zero SoC utilization = %v", u)
	}
}

func TestMaxCameras(t *testing.T) {
	d := DefaultDemand()
	// Xavier: 32 / (0.433*30*1.2) = 2.05 -> 2 cameras.
	if got := d.MaxCameras(Xavier()); got != 2 {
		t.Errorf("Xavier MaxCameras = %d, want 2", got)
	}
	// Orin: 275 / 15.588 = 17.6 -> 17 cameras.
	if got := d.MaxCameras(Orin()); got != 17 {
		t.Errorf("Orin MaxCameras = %d, want 17", got)
	}
}

func TestMaxFPRPerCamera(t *testing.T) {
	d := DefaultDemand()
	// Xavier with 12 cameras: 32 / (0.433*12*1.2) = 5.13 FPR.
	got := d.MaxFPRPerCamera(Xavier())
	if math.Abs(got-5.13) > 0.05 {
		t.Errorf("Xavier max FPR = %v, want ~5.13", got)
	}
	// Zhuyi's point: the scenarios' max summed demand (32 FPR over 3
	// cameras) fits in Xavier-class budgets that a fixed 90-FPR total
	// does not.
	if got < 5 {
		t.Errorf("max FPR %v too low for the Zhuyi operating point", got)
	}
}

func TestDemandCurveMonotone(t *testing.T) {
	d := DefaultDemand()
	curve := d.DemandCurve(12)
	if len(curve) != 12 {
		t.Fatalf("curve length = %d", len(curve))
	}
	for i := 1; i < len(curve); i++ {
		if curve[i].TOPS <= curve[i-1].TOPS {
			t.Fatalf("curve not increasing at %d", i)
		}
	}
	if curve[11].Cameras != 12 || math.Abs(curve[11].TOPS-d.TOPS()) > 1e-9 {
		t.Errorf("final point = %+v", curve[11])
	}
}

func TestValidate(t *testing.T) {
	bad := []DemandConfig{
		{Model: PerceptionModel{OpsPerFrame: 0}, Cameras: 1, FPR: 30},
		{Model: SSDLarge(), Cameras: -1, FPR: 30},
		{Model: SSDLarge(), Cameras: 1, FPR: -1},
		{Model: SSDLarge(), Cameras: 1, FPR: 30, ExtraModelFrac: -0.5},
	}
	for i, d := range bad {
		if err := d.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestZeroEdgeCases(t *testing.T) {
	d := DemandConfig{Model: SSDLarge(), Cameras: 0, FPR: 30}
	if d.PerCameraTOPS() != 0 {
		t.Error("zero cameras per-camera demand")
	}
	z := DemandConfig{}
	if z.MaxCameras(Orin()) != 0 {
		t.Error("zero model max cameras")
	}
	if z.MaxFPRPerCamera(Orin()) != 0 {
		t.Error("zero model max FPR")
	}
}
