package render

import (
	"strings"
	"testing"

	"repro/internal/geom"
	"repro/internal/trace"
	"repro/internal/world"
)

func sampleRow() trace.Row {
	return trace.Row{
		Time: 2.5,
		Ego: world.Agent{
			ID: world.EgoID, Pose: geom.Pose{Pos: geom.V(100, 3.5)},
			Speed: 20, Accel: -3, Length: 4.6, Width: 1.9,
		},
		Actors: []world.Agent{
			{ID: "lead", Pose: geom.Pose{Pos: geom.V(140, 3.5)}, Speed: 15, Length: 4.6, Width: 1.9},
			{ID: "side", Pose: geom.Pose{Pos: geom.V(100, 7)}, Speed: 20, Length: 4.6, Width: 1.9},
		},
		AEB: true,
	}
}

func TestFrameContainsAgents(t *testing.T) {
	out := Frame(sampleRow(), DefaultViewport())
	if !strings.Contains(out, "E") {
		t.Error("ego missing")
	}
	if !strings.Contains(out, "L") {
		t.Error("lead missing")
	}
	if !strings.Contains(out, "S") {
		t.Error("side actor missing")
	}
	if !strings.Contains(out, "[AEB]") {
		t.Error("AEB flag missing")
	}
	if !strings.Contains(out, "t=  2.50s") {
		t.Errorf("header wrong:\n%s", out)
	}
}

func TestFrameGeometry(t *testing.T) {
	v := DefaultViewport()
	out := Frame(sampleRow(), v)
	lines := strings.Split(out, "\n")
	// Header + rows() lines.
	if len(lines) < v.rows()+1 {
		t.Fatalf("lines = %d", len(lines))
	}
	// The lead is 40 m ahead in the same lane: same row as the ego,
	// farther right.
	var egoRow, egoCol, leadCol int = -1, -1, -1
	for r, line := range lines[1:] {
		if c := strings.IndexByte(line, 'E'); c >= 0 {
			egoRow, egoCol = r, c
		}
		if c := strings.IndexByte(line, 'L'); c >= 0 {
			if r != egoRow && egoRow != -1 {
				t.Errorf("lead row %d != ego row %d", r, egoRow)
			}
			leadCol = c
		}
	}
	if egoCol < 0 || leadCol < 0 {
		t.Fatal("glyphs not found")
	}
	if leadCol <= egoCol {
		t.Errorf("lead col %d not ahead of ego col %d", leadCol, egoCol)
	}
	// ~40 m ahead at 1 col/m.
	if d := leadCol - egoCol; d < 35 || d > 45 {
		t.Errorf("lead offset = %d cols, want ~40", d)
	}
	// The left-lane actor renders above the ego (smaller row index).
	sideRow := -1
	for r, line := range lines[1:] {
		if strings.IndexByte(line, 'S') >= 0 {
			sideRow = r
		}
	}
	if sideRow >= egoRow {
		t.Errorf("left actor row %d not above ego row %d", sideRow, egoRow)
	}
}

func TestFrameClipsOutOfView(t *testing.T) {
	row := sampleRow()
	row.Actors = append(row.Actors, world.Agent{
		ID: "far", Pose: geom.Pose{Pos: geom.V(500, 3.5)}, Length: 4.6, Width: 1.9,
	})
	out := Frame(row, DefaultViewport())
	if strings.Contains(out, "F") {
		t.Error("out-of-view actor rendered")
	}
}

func TestStripSamplingAndCollision(t *testing.T) {
	tr := &trace.Trace{}
	for i := 0; i <= 300; i++ {
		row := sampleRow()
		row.Time = float64(i) * 0.01
		tr.Rows = append(tr.Rows, row)
	}
	tr.Collision = &trace.Collision{Time: 3.0, ActorID: "lead"}
	out := Strip(tr, 1.0, DefaultViewport())
	// Frames at t=0, 1, 2, 3 -> 4 headers (the collision line also
	// contains "t=", so count the velocity field instead).
	if got := strings.Count(out, "m/s²"); got != 4 {
		t.Errorf("header fields = %d, want 4", got)
	}
	if !strings.Contains(out, "COLLISION with lead") {
		t.Error("collision annotation missing")
	}
	// Zero interval defaults to 1 s.
	if got := strings.Count(Strip(tr, 0, DefaultViewport()), "m/s²"); got != 4 {
		t.Errorf("default interval header fields = %d", got)
	}
}
