// Package render draws recorded traces as ego-relative ASCII top views,
// a quick way to inspect scenario choreography (cut-ins, reveals,
// braking waves) without plotting tools. The viewport follows the ego:
// columns are longitudinal meters (left edge behind the ego), rows are
// lateral meters (top = left of the ego).
package render

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/trace"
	"repro/internal/world"
)

// Viewport describes the rendered window in ego-relative meters.
type Viewport struct {
	Back         float64 // meters behind the ego (left edge)
	Ahead        float64 // meters ahead of the ego (right edge)
	Half         float64 // lateral half-width
	ColsPerMeter float64
	RowsPerMeter float64
}

// DefaultViewport covers 20 m behind to 100 m ahead and ±7 m laterally.
func DefaultViewport() Viewport {
	return Viewport{Back: 20, Ahead: 100, Half: 7, ColsPerMeter: 1, RowsPerMeter: 0.5}
}

func (v Viewport) cols() int { return int((v.Back + v.Ahead) * v.ColsPerMeter) }
func (v Viewport) rows() int { return int(2*v.Half*v.RowsPerMeter) + 1 }

// Frame renders one trace row. The ego is drawn as 'E' (facing right),
// actors as the upper-cased first rune of their IDs, and collisions are
// annotated in the header.
func Frame(row trace.Row, v Viewport) string {
	cols, rows := v.cols(), v.rows()
	grid := make([][]byte, rows)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(".", cols))
	}

	put := func(a world.Agent, glyph byte) {
		local := row.Ego.Pose.ToLocal(a.Pose.Pos)
		span := int(math.Max(1, a.Length*v.ColsPerMeter))
		for d := -span / 2; d <= span/2; d++ {
			x := local.X + float64(d)/v.ColsPerMeter
			c := int((x + v.Back) * v.ColsPerMeter)
			r := int((v.Half - local.Y) * v.RowsPerMeter)
			if c < 0 || c >= cols || r < 0 || r >= rows {
				continue
			}
			grid[r][c] = glyph
		}
	}

	for _, a := range row.Actors {
		glyph := byte('?')
		if len(a.ID) > 0 {
			glyph = byte(strings.ToUpper(a.ID[:1])[0])
		}
		put(a, glyph)
	}
	put(row.Ego, 'E')

	var sb strings.Builder
	fmt.Fprintf(&sb, "t=%6.2fs  v=%5.2f m/s  a=%6.2f m/s²", row.Time, row.Ego.Speed, row.Ego.Accel)
	if row.AEB {
		sb.WriteString("  [AEB]")
	}
	sb.WriteByte('\n')
	for _, line := range grid {
		sb.Write(line)
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Strip renders frames sampled every `every` seconds across the whole
// trace, separated by blank lines. A collision annotation closes the
// strip when the trace recorded one.
func Strip(tr *trace.Trace, every float64, v Viewport) string {
	if every <= 0 {
		every = 1
	}
	var sb strings.Builder
	next := 0.0
	for i := range tr.Rows {
		row := tr.Rows[i]
		if row.Time+1e-9 < next {
			continue
		}
		sb.WriteString(Frame(row, v))
		sb.WriteByte('\n')
		next = row.Time + every
	}
	if tr.Collision != nil {
		fmt.Fprintf(&sb, "COLLISION with %s at t=%.2fs\n", tr.Collision.ActorID, tr.Collision.Time)
	}
	return sb.String()
}
