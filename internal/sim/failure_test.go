package sim

import (
	"testing"

	"repro/internal/sensor"
	"repro/internal/units"
	"repro/internal/vehicle"
)

// Failure injection: the closed loop must degrade the way the physical
// argument predicts when sensors or detections fail.

// obstacleCourse is a straight-road config with a static obstacle 120 m
// ahead at 45 mph — comfortably safe for a healthy stack at 30 FPR.
func obstacleCourse(rig sensor.Rig) Config {
	cfg := baseConfig("failure")
	cfg.DesiredSpeed = units.MPHToMPS(45)
	cfg.EgoInit = vehicle.FrenetState{S: 0, D: 3.5, Speed: cfg.DesiredSpeed}
	cfg.Duration = 20
	cfg.Rig = rig
	cfg.Actors = []ActorSpec{{
		ID:     "obstacle",
		Params: vehicle.StaticObstacle(),
		Init:   vehicle.FrenetState{S: 120, D: 3.5},
	}}
	return cfg
}

func TestHealthyRigStops(t *testing.T) {
	res, err := Run(obstacleCourse(sensor.DefaultRig()))
	if err != nil {
		t.Fatal(err)
	}
	if res.Collided() {
		t.Fatalf("healthy rig collided: %+v", res.Collision)
	}
	if !res.EgoStopped {
		t.Error("ego never stopped for the obstacle")
	}
}

func TestSingleFrontCameraStillSafe(t *testing.T) {
	// Losing one of the two overlapping front cameras halves the
	// confirmation rate but the stack remains safe at 30 FPR.
	var rig sensor.Rig
	for _, c := range sensor.DefaultRig() {
		if c.Name == sensor.Front60 {
			continue
		}
		rig = append(rig, c)
	}
	res, err := Run(obstacleCourse(rig))
	if err != nil {
		t.Fatal(err)
	}
	if res.Collided() {
		t.Errorf("single-front rig collided: %+v", res.Collision)
	}
}

func TestBlindForwardRigCollides(t *testing.T) {
	// Losing both front cameras leaves the corridor unobserved: the
	// planner never sees the obstacle and drives into it.
	var rig sensor.Rig
	for _, c := range sensor.DefaultRig() {
		if c.Name == sensor.Front120 || c.Name == sensor.Front60 {
			continue
		}
		rig = append(rig, c)
	}
	res, err := Run(obstacleCourse(rig))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Collided() {
		t.Error("forward-blind rig avoided the obstacle; sensing model broken")
	}
}

func TestDetectionDropoutsDegradeSafety(t *testing.T) {
	// Heavy detection dropouts (30% missed frames) at a low rate push
	// the confirmation time out; the same geometry that is safe with
	// reliable detection can collide.
	reliable := obstacleCourse(sensor.DefaultRig())
	reliable.FPR = 2
	r1, err := Run(reliable)
	if err != nil {
		t.Fatal(err)
	}

	flaky := obstacleCourse(sensor.DefaultRig())
	flaky.FPR = 2
	flaky.Perception.DetectProb = 0.5
	flaky.Seed = 3
	r2, err := Run(flaky)
	if err != nil {
		t.Fatal(err)
	}
	// The dropout run must do no better than the reliable run: if the
	// reliable stack stopped with margin, the flaky one stops with less
	// (or crashes).
	if r1.Collided() && !r2.Collided() {
		t.Error("dropouts improved the outcome")
	}
	if !r1.Collided() && !r2.Collided() && r2.MinBumperGap > r1.MinBumperGap+1 {
		t.Errorf("dropout margin %v exceeds reliable margin %v", r2.MinBumperGap, r1.MinBumperGap)
	}
}

func TestMaxMissesDropsGhostTracks(t *testing.T) {
	// After the obstacle-free course ends, no stale tracks should keep
	// the ego braking: run an empty road with a short-lived detection
	// glitch simulated by a vanishing actor.
	cfg := baseConfig("ghost")
	cfg.DesiredSpeed = 20
	cfg.EgoInit = vehicle.FrenetState{S: 0, D: 3.5, Speed: 20}
	cfg.Duration = 10
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	last := res.Trace.Rows[res.Trace.Len()-1]
	if last.Ego.Speed < 19 {
		t.Errorf("ego slowed to %v on an empty road", last.Ego.Speed)
	}
}
