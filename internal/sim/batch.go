package sim

import (
	"reflect"
)

// Batch advances several simulation variants in lockstep, sharing the
// per-instant work that depends only on the kinematic state and the
// static scenario geometry: ground-truth materialization, the
// collision and min-gap sweeps, camera cone updates, occlusion rays,
// and per-camera visibility lists.
//
// Rate-sweep campaigns are the motivating shape: the variants of one
// (scenario, seed) point differ only in their frame processing rate
// (or rate controller), so their worlds evolve identically until the
// perception difference reaches the planner and the ego commands
// diverge. Until that instant every variant is the same closed loop;
// after it, they are genuinely different runs. The batch exploits the
// shared prefix and respects the divergence:
//
//   - Variants whose configurations are compatible (same road, rig,
//     actors, ego setup, dt, duration — see shareable) form lockstep
//     groups. The first member of a group leads; the rest follow,
//     reading the leader's stepShare instead of their own.
//   - Before every round, each follower's dynamic state (ego Frenet
//     state, applied command, every actor's Frenet state, collision
//     status) is compared against its leader. Bitwise equality is the
//     soundness condition: the shared quantities are pure functions of
//     exactly that state, so equal state means the shared values are
//     the follower's own. Any mismatch permanently forks the follower
//     onto its private share — it re-derives everything itself from
//     then on, which is precisely the solo step path.
//
// Results are therefore bit-identical to running each variant alone;
// batch_equiv_test.go asserts it trace-byte for trace-byte.
type Batch struct {
	sims   []*Simulation
	groups [][]int // indices into sims; group[0] leads
	forks  int
}

// NewBatch builds the variants and wires compatible ones into lockstep
// groups. Incompatible configurations are not an error — each simply
// forms (or joins) a different group; a batch of pairwise-incompatible
// configs degenerates to independent solo runs.
//
// Each config must be freshly built for this batch: behavior.Script
// values carry run state, so two variants sharing a Script pointer
// (or a config reused from an earlier run) would corrupt each other —
// the same single-use rule Run has always had.
func NewBatch(cfgs []Config) (*Batch, error) {
	b := &Batch{sims: make([]*Simulation, len(cfgs))}
	for i, cfg := range cfgs {
		s, err := New(cfg)
		if err != nil {
			return nil, err
		}
		b.sims[i] = s
	}
	for i, s := range b.sims {
		placed := false
		for gi, g := range b.groups {
			lead := b.sims[g[0]]
			if shareable(lead, s) {
				s.sh = lead.own
				b.groups[gi] = append(b.groups[gi], i)
				placed = true
				break
			}
		}
		if !placed {
			b.groups = append(b.groups, []int{i})
		}
	}
	return b, nil
}

// shareable reports whether two simulations may share a stepShare:
// everything the shared quantities are computed from — the world
// geometry, the rig, the actor roster, the ego's physical setup, the
// time grid — must be identical, and collisions must end (or not end)
// both runs alike so group done-ness stays aligned. Seeds, frame
// processing rates, rate controllers, perception and planner
// configurations, and recording levels are free to differ: they are
// exactly the variant axes, and the per-round state verification
// catches the moment any of them makes the worlds diverge.
func shareable(a, s *Simulation) bool {
	ac, sc := &a.cfg, &s.cfg
	if ac.Dt != sc.Dt || ac.Duration != sc.Duration ||
		ac.StopOnCollision != sc.StopOnCollision ||
		ac.EgoParams != sc.EgoParams || ac.EgoInit != sc.EgoInit ||
		len(ac.Actors) != len(sc.Actors) {
		return false
	}
	for i := range ac.Actors {
		aa, sa := &ac.Actors[i], &sc.Actors[i]
		if aa.ID != sa.ID || aa.Params != sa.Params || aa.Init != sa.Init {
			return false
		}
	}
	// Compare roads by their public geometry only: the Road struct also
	// carries lazily-built fast-path tables, so a queried road must not
	// compare different from a fresh one with the same shape.
	if ac.Road != sc.Road {
		if ac.Road == nil || sc.Road == nil ||
			ac.Road.LaneWidth != sc.Road.LaneWidth ||
			ac.Road.NumLanes != sc.Road.NumLanes ||
			!reflect.DeepEqual(ac.Road.Ref, sc.Road.Ref) {
			return false
		}
	}
	if !reflect.DeepEqual(ac.Rig, sc.Rig) {
		return false
	}
	return true
}

// lockstep reports whether follower f is still bitwise in step with
// its leader: finished runs pair only with finished runs, and live
// ones must agree on the step index, the ego state and command, every
// actor's state, and whether a collision has occurred (the sweep is
// skipped once one has).
func lockstep(lead, f *Simulation) bool {
	if lead.done || f.done {
		return lead.done == f.done
	}
	if lead.step != f.step ||
		lead.egoState != f.egoState ||
		lead.appliedAccel != f.appliedAccel ||
		(lead.res.Collision == nil) != (f.res.Collision == nil) {
		return false
	}
	for i := range lead.actors {
		if lead.actors[i].state != f.actors[i].state {
			return false
		}
	}
	return true
}

// Step advances every variant one round: followers are re-verified
// against their leaders (forking any that diverged), then each group
// steps leader-first so the shared work is computed once and read by
// the rest. It reports whether any variant has steps remaining.
func (b *Batch) Step() bool {
	running := false
	var forked []int
	for gi := range b.groups {
		g := b.groups[gi]
		if len(g) > 1 {
			lead := b.sims[g[0]]
			keep := g[:1]
			for _, fi := range g[1:] {
				f := b.sims[fi]
				if lockstep(lead, f) {
					keep = append(keep, fi)
				} else {
					f.sh = f.own
					forked = append(forked, fi)
				}
			}
			b.groups[gi] = keep
		}
		for _, si := range b.groups[gi] {
			if b.sims[si].Step() {
				running = true
			}
		}
	}
	// Forked variants still advance this round, then continue as their
	// own singleton groups.
	for _, fi := range forked {
		if b.sims[fi].Step() {
			running = true
		}
		b.groups = append(b.groups, []int{fi})
	}
	b.forks += len(forked)
	return running
}

// Run advances the batch to completion and returns every variant's
// result, index-aligned with the configurations given to NewBatch.
func (b *Batch) Run() []*Result {
	for b.Step() {
	}
	results := make([]*Result, len(b.sims))
	for i, s := range b.sims {
		results[i] = s.Result()
	}
	return results
}

// Len returns the number of variants in the batch.
func (b *Batch) Len() int { return len(b.sims) }

// Sim returns variant i, for callers that interleave their own reads
// with Step (the same live-state seam a solo Simulation offers).
func (b *Batch) Sim(i int) *Simulation { return b.sims[i] }

// Forks returns how many variants have diverged from their leaders and
// now run independently.
func (b *Batch) Forks() int { return b.forks }

// Groups returns the current lockstep group sizes (largest first is
// not guaranteed; order follows formation and forking).
func (b *Batch) Groups() []int {
	sizes := make([]int, len(b.groups))
	for i, g := range b.groups {
		sizes[i] = len(g)
	}
	return sizes
}

// RunBatch builds a batch over the configurations and runs it to
// completion: the lockstep-sharing counterpart of calling Run per
// config.
func RunBatch(cfgs []Config) ([]*Result, error) {
	b, err := NewBatch(cfgs)
	if err != nil {
		return nil, err
	}
	return b.Run(), nil
}
