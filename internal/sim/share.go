package sim

import (
	"math"

	"repro/internal/geom"
	"repro/internal/sensor"
	"repro/internal/trace"
	"repro/internal/vehicle"
	"repro/internal/world"
)

// stepShare is the compute-once context of one simulation instant: the
// ground-truth frame, the ego footprint, the collision/min-gap sweep
// results, the updated camera cone table, the occlusion memo, and the
// per-camera visibility index lists. Everything in it is a pure
// function of the instant's kinematic state and the static scenario
// geometry — not of any variant-specific state (perception noise,
// planner decisions, camera schedules) — so under lockstep batching a
// group of variants whose states are bitwise equal shares one
// stepShare and pays for each derived quantity once.
//
// A solo Simulation owns a private stepShare and flows through exactly
// the same code path; "shared" is just more readers per compute.
type stepShare struct {
	step int // step index the share is valid for; -1 before step 0

	groundOK bool
	frame    *world.Frame
	egoAgent world.Agent // ego ground truth; Accel is overwritten per variant

	collOK    bool
	collided  bool
	collActor string

	gapOK      bool
	stepMinGap float64 // min candidate bumper gap this instant (+Inf if none)

	egoQuadOK bool
	egoQuad   geom.Quad

	cones   *sensor.RigCones
	conesOK bool // cones updated to this step's ego pose

	occ   sensor.OcclusionCache
	vis   [][]int // per camera: visible frame indices
	visOK []bool

	// Per-actor scatter memo: the Frenet state each frame column was
	// last materialized from. The column values are a pure function of
	// that state (plus the run-constant road, ID, and params), so a
	// bitwise-unchanged state means the column already holds exactly
	// what ScatterTo would write — stationary obstacles and stopped
	// vehicles skip the pose evaluation entirely. Unlike the per-instant
	// memos above, this one survives beginStep: frame columns persist
	// across steps.
	prevState []vehicle.FrenetState
	prevOK    []bool
}

func newStepShare(rig sensor.Rig, nActors int) *stepShare {
	sh := &stepShare{
		step:      -1,
		frame:     world.NewFrame(nActors),
		cones:     sensor.NewRigCones(rig),
		vis:       make([][]int, len(rig)),
		visOK:     make([]bool, len(rig)),
		prevState: make([]vehicle.FrenetState, nActors),
		prevOK:    make([]bool, nActors),
	}
	for i := range sh.vis {
		sh.vis[i] = make([]int, 0, nActors)
	}
	return sh
}

// beginStep invalidates every memo for a new instant. The first
// simulation of a lockstep group to reach the instant calls it; the
// rest see a matching step index and reuse.
func (sh *stepShare) beginStep(step, nActors int) {
	sh.step = step
	sh.groundOK = false
	sh.collOK = false
	sh.gapOK = false
	sh.egoQuadOK = false
	sh.conesOK = false
	for i := range sh.visOK {
		sh.visOK[i] = false
	}
	sh.occ.Reset(nActors)
}

// ensureGround materializes the shared ground truth from s's state.
func (sh *stepShare) ensureGround(s *Simulation) {
	if sh.groundOK {
		return
	}
	for i := range s.actors {
		a := &s.actors[i]
		if sh.prevOK[i] && sameStateBits(&sh.prevState[i], &a.state) {
			continue
		}
		a.state.ScatterTo(sh.frame, i, s.cfg.Road, a.spec.ID, a.spec.Params)
		sh.prevState[i] = a.state
		sh.prevOK[i] = true
	}
	s.egoState.FillAgent(&sh.egoAgent, s.cfg.Road, world.EgoID, s.cfg.EgoParams)
	sh.groundOK = true
}

// sameStateBits compares two Frenet states bit for bit. Bitwise (not
// ==) so -0.0 vs +0.0 and NaNs conservatively re-scatter: identical
// bits are the exact precondition for reusing a pure function's output.
func sameStateBits(a, b *vehicle.FrenetState) bool {
	return math.Float64bits(a.S) == math.Float64bits(b.S) &&
		math.Float64bits(a.D) == math.Float64bits(b.D) &&
		math.Float64bits(a.Speed) == math.Float64bits(b.Speed) &&
		math.Float64bits(a.Accel) == math.Float64bits(b.Accel) &&
		math.Float64bits(a.LatVel) == math.Float64bits(b.LatVel)
}

func (sh *stepShare) ensureEgoQuad() *geom.Quad {
	if !sh.egoQuadOK {
		sh.egoQuad = geom.MakeQuad(sh.egoAgent.BBox())
		sh.egoQuadOK = true
	}
	return &sh.egoQuad
}

// ensureCollision runs the collision sweep once per instant: a
// bounding-circle pre-filter (precomputed footprint half-diagonals
// plus a rounding margin) skips the exact quad intersection for
// actors that provably cannot touch the ego; the detected collisions
// are exactly those of the plain OBB sweep.
func (sh *stepShare) ensureCollision(egoDiag float64) {
	if sh.collOK {
		return
	}
	sh.collided = false
	sh.collActor = ""
	f := sh.frame
	ex, ey := sh.egoAgent.Pose.Pos.X, sh.egoAgent.Pose.Pos.Y
	for i := 0; i < f.Len(); i++ {
		dx := f.X[i] - ex
		dy := f.Y[i] - ey
		reach := egoDiag + f.Radius[i]
		if dx*dx+dy*dy > reach*reach {
			continue
		}
		if sh.ensureEgoQuad().Intersects(f.Quad(i)) {
			sh.collided = true
			sh.collActor = f.IDs[i]
			break
		}
	}
	sh.collOK = true
}

// ensureMinGap computes this instant's closest-approach candidate: the
// minimum bumper gap over the actors within the ego's lateral
// corridor, exactly as the per-variant running-minimum update used to
// accumulate it (min is associative, so folding the per-instant
// minimum into the running minimum is bit-identical).
//
// The road projection is skipped for actors whose own lane-relative
// state puts them far outside the corridor: each actor was posed at
// PoseAtOffset(S, D), so projecting its position back yields d ≈ D —
// off by sub-millimeter rounding for the analytic centerlines while
// the actor is within the road's station extent. A 1 m margin on the
// 2.2 m corridor test (a thousand times the worst-case round-trip
// error, and small enough that whole-lane offsets still skip) cannot
// change which actors pass it; actors beyond the road ends (where a
// composite's nearest piece can reassign d) always take the exact
// projection.
func (sh *stepShare) ensureMinGap(s *Simulation) {
	if sh.gapOK {
		return
	}
	rd := s.cfg.Road
	egoS, egoD := s.egoState.S, s.egoState.D
	egoLength := s.egoAgent.Length
	roadLen := rd.Ref.Length()
	minGap := math.Inf(1)
	f := sh.frame
	for i := 0; i < f.Len(); i++ {
		st := &s.actors[i].state
		if st.S >= 0 && st.S <= roadLen && math.Abs(st.D-egoD) > 2.2+1.0 {
			continue
		}
		as, d := rd.Frenet(geom.Vec2{X: f.X[i], Y: f.Y[i]})
		if math.Abs(d-egoD) > 2.2 {
			continue
		}
		gap := math.Abs(as-egoS) - (egoLength+f.Length[i])/2
		if gap < minGap {
			minGap = gap
		}
	}
	sh.stepMinGap = minGap
	sh.gapOK = true
}

// ensureCones updates the cone table to this instant's ego pose (one
// shared SinCos for the whole rig and every variant).
func (sh *stepShare) ensureCones() *sensor.RigCones {
	if !sh.conesOK {
		sh.cones.Update(sh.egoAgent.Pose)
		sh.conesOK = true
	}
	return sh.cones
}

// visibleIdx returns the frame indices camera ci sees this instant,
// computing them on first demand. Variants at different operating
// rates process frames at different instants, so each camera's list
// materializes only when some variant's schedule makes it due.
func (sh *stepShare) visibleIdx(ci int) []int {
	if !sh.visOK[ci] {
		rc := sh.ensureCones()
		sh.vis[ci] = rc.AppendVisibleIdx(sh.vis[ci][:0], ci, sh.frame, &sh.occ)
		sh.visOK[ci] = true
	}
	return sh.vis[ci]
}

// collision materializes the shared sweep result as a trace record for
// one variant.
func (sh *stepShare) collision(t float64) *trace.Collision {
	if !sh.collided {
		return nil
	}
	return &trace.Collision{Time: t, ActorID: sh.collActor}
}
