package sim_test

// Lockstep-batch equivalence suite: a sim.Batch over (seed, rate)
// variants must be indistinguishable — trace byte for trace byte —
// from running every variant alone. The batch shares ground truth,
// collision sweeps, and visibility between state-identical variants
// and forks them on divergence, so these tests sweep the places where
// that machinery could leak: rate splits (late divergence), seed
// splits (never shareable), early collisions under StopOnCollision
// (done before the cameras ever fire), and dynamic rate controllers.
//
// Configs are built fresh for the solo pass and again for the batch:
// behavior.Script values carry run state, so a Config is good for one
// run (which is also why every production layer builds per job).

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/scenario"
	"repro/internal/sensor"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/vehicle"
)

// assertBatchMatchesSolo materializes the config list twice — solo
// runs against batch — and requires identical traces and summaries.
func assertBatchMatchesSolo(t *testing.T, build func() []sim.Config) *sim.Batch {
	t.Helper()
	soloCfgs := build()
	solo := make([]*sim.Result, len(soloCfgs))
	for i, cfg := range soloCfgs {
		res, err := sim.Run(cfg)
		if err != nil {
			t.Fatalf("solo run %d: %v", i, err)
		}
		solo[i] = res
	}
	b, err := sim.NewBatch(build())
	if err != nil {
		t.Fatalf("NewBatch: %v", err)
	}
	batched := b.Run()
	for i := range solo {
		want, got := solo[i], batched[i]
		if (want.Trace == nil) != (got.Trace == nil) {
			t.Fatalf("variant %d: trace presence %v, want %v", i, got.Trace != nil, want.Trace != nil)
		}
		if want.Trace != nil {
			wb, gb := traceBytes(t, want.Trace), traceBytes(t, got.Trace)
			if !bytes.Equal(wb, gb) {
				t.Errorf("variant %d: trace serialization differs (%d vs %d bytes)", i, len(gb), len(wb))
				for r := range want.Trace.Rows {
					if r < len(got.Trace.Rows) && !reflect.DeepEqual(want.Trace.Rows[r], got.Trace.Rows[r]) {
						t.Errorf("first divergent row %d (t=%.2f)", r, want.Trace.Rows[r].Time)
						break
					}
				}
			}
		}
		if !reflect.DeepEqual(want.Collision, got.Collision) {
			t.Errorf("variant %d: collision %+v, want %+v", i, got.Collision, want.Collision)
		}
		if !reflect.DeepEqual(want.FramesProcessed, got.FramesProcessed) {
			t.Errorf("variant %d: frames %v, want %v", i, got.FramesProcessed, want.FramesProcessed)
		}
		if want.MinBumperGap != got.MinBumperGap || want.EgoStopped != got.EgoStopped || want.Level != got.Level {
			t.Errorf("variant %d: summary (gap %v stopped %v level %v), want (gap %v stopped %v level %v)",
				i, got.MinBumperGap, got.EgoStopped, got.Level, want.MinBumperGap, want.EgoStopped, want.Level)
		}
	}
	return b
}

// TestBatchMatchesSoloRuns sweeps every registered scenario with a
// (rate × seed) variant grid. Same-seed rate variants form lockstep
// groups (shared geometry, different schedules); different jitter
// seeds change the actor setups, so they must land in separate groups
// — both paths must reproduce the solo runs exactly.
func TestBatchMatchesSoloRuns(t *testing.T) {
	for _, sc := range scenario.Default().List() {
		t.Run(sc.Name, func(t *testing.T) {
			t.Parallel()
			build := func() []sim.Config {
				var cfgs []sim.Config
				for _, seed := range []int64{1, 2} {
					for _, fpr := range []float64{30, 10, 3} {
						cfgs = append(cfgs, sc.Build(fpr, seed))
					}
				}
				return cfgs
			}
			b := assertBatchMatchesSolo(t, build)
			groups := b.Groups()
			// Two seeds → at least two groups; same-seed rate variants
			// must have been wired together at construction (forks may
			// split them later).
			if len(groups) < 2 {
				t.Errorf("groups %v: seed variants shared a group", groups)
			}
			if len(groups)-b.Forks() >= 6 {
				t.Errorf("groups %v forks %d: rate variants never shared", groups, b.Forks())
			}
		})
	}
}

// TestBatchEarlyCollision pins the degenerate schedule: an actor
// overlapping the ego at t=0 collides at step 0, before any camera
// frame processes, and StopOnCollision ends every variant immediately.
func TestBatchEarlyCollision(t *testing.T) {
	sc, ok := scenario.ByName(scenario.CutOut)
	if !ok {
		t.Fatal("cut-out not registered")
	}
	build := func() []sim.Config {
		var cfgs []sim.Config
		for _, fpr := range []float64{30, 3} {
			cfg := sc.Build(fpr, 1)
			cfg.Actors = append(cfg.Actors, sim.ActorSpec{
				ID:     "blocker",
				Params: vehicle.StaticObstacle(),
				Init:   vehicle.FrenetState{S: cfg.EgoInit.S + 1, D: cfg.EgoInit.D},
			})
			cfg.StopOnCollision = true
			cfgs = append(cfgs, cfg)
		}
		return cfgs
	}
	b := assertBatchMatchesSolo(t, build)
	for i := 0; i < b.Len(); i++ {
		if !b.Sim(i).Done() {
			t.Errorf("variant %d not done after batch run", i)
		}
	}
}

// TestBatchDynamicRateControllers covers controller-attached variants:
// the controllers differ per variant, so the camera schedules — and
// eventually the closed loops — diverge while ground truth stays
// shared until the fork.
func TestBatchDynamicRateControllers(t *testing.T) {
	sc, ok := scenario.ByName(scenario.CutOutFast)
	if !ok {
		t.Fatal("cut-out-fast not registered")
	}
	build := func() []sim.Config {
		controllers := []sim.RateController{
			nil,
			uniformRates{sensor.Front120: 12, sensor.Left: 4},
			uniformRates{sensor.Front120: 5},
		}
		var cfgs []sim.Config
		for _, ctrl := range controllers {
			cfg := sc.Build(30, 3)
			cfg.RateController = ctrl
			cfgs = append(cfgs, cfg)
		}
		return cfgs
	}
	assertBatchMatchesSolo(t, build)
}

// TestBatchMixedRecordLevels lets variants of one lockstep group
// record at different levels: sharing is about what is computed, not
// what is materialized.
func TestBatchMixedRecordLevels(t *testing.T) {
	sc, ok := scenario.ByName(scenario.CutOut)
	if !ok {
		t.Fatal("cut-out not registered")
	}
	build := func() []sim.Config {
		var cfgs []sim.Config
		for _, lvl := range []trace.Level{trace.LevelFull, trace.LevelSummary, trace.LevelOff} {
			cfg := sc.Build(10, 1)
			cfg.Record = lvl
			cfgs = append(cfgs, cfg)
		}
		return cfgs
	}
	b := assertBatchMatchesSolo(t, build)
	if g := b.Groups(); len(g) != 1 || g[0] != 3 {
		t.Errorf("groups = %v, want one group of 3", g)
	}
}
