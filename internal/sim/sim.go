// Package sim is the closed-loop driving simulator: scripted actors and
// the AV stack (camera rig → perception at a configurable per-camera
// frame processing rate → planner → vehicle dynamics) advance on a fixed
// 10 ms step with oriented-bounding-box collision detection, recording a
// trace of every time-step.
//
// It substitutes for the paper's NVIDIA DriveSim + AV-stack testbed (see
// DESIGN.md): the property the experiments need is that the closed-loop
// collision outcome depends on the configured frame processing rate,
// which it does here through perception staleness and K-frame actor
// confirmation.
package sim

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/behavior"
	"repro/internal/perception"
	"repro/internal/planner"
	"repro/internal/road"
	"repro/internal/sensor"
	"repro/internal/trace"
	"repro/internal/vehicle"
	"repro/internal/world"
)

// Version identifies the simulator's behavioral revision. The
// persistent run store keys archived traces on it, so any change to
// simulation semantics (integration step, perception model, planner
// defaults, collision handling) must bump it — otherwise replay would
// diff traces recorded under different dynamics and report false
// divergences (or, worse, serve stale disk results as cache hits).
const Version = "sim-v1"

// ActorSpec describes one scripted actor.
type ActorSpec struct {
	ID     string
	Params vehicle.Params
	Init   vehicle.FrenetState
	Script *behavior.Script // nil: cruise at the initial speed (or stay static)
}

// RateController adjusts per-camera processing rates at runtime. The
// Zhuyi-based work prioritizer in internal/safety implements this; a nil
// controller means fixed rates.
type RateController interface {
	// Rates returns the desired FPR per camera name given the current
	// perceived world model. Cameras absent from the result keep their
	// previous rate.
	Rates(now float64, ego world.Agent, wm []world.Agent) map[string]float64
}

// Config describes one simulation run.
type Config struct {
	Name         string
	Road         *road.Road
	EgoInit      vehicle.FrenetState
	EgoParams    vehicle.Params
	DesiredSpeed float64
	Planner      *planner.Config // nil: DefaultConfig(DesiredSpeed, EgoParams)
	Actors       []ActorSpec

	Duration float64 // s
	Dt       float64 // s; 0 defaults to 0.01

	Rig        sensor.Rig // nil: sensor.DefaultRig()
	Perception perception.Config
	FPR        float64 // uniform initial per-camera rate, frames/s

	RateController RateController
	RateEpoch      float64 // controller invocation period, s; 0 defaults to 0.1

	Seed            int64
	StopOnCollision bool
}

// Result is the outcome of a run.
type Result struct {
	Trace           *trace.Trace
	Collision       *trace.Collision
	FramesProcessed map[string]int
	MinBumperGap    float64 // closest longitudinal approach to any in-corridor actor, m
	EgoStopped      bool    // the ego came to a complete stop at least once
}

// Collided reports whether the run ended in a collision.
func (r *Result) Collided() bool { return r.Collision != nil }

// Run executes the scenario and returns the recorded result.
func Run(cfg Config) (*Result, error) {
	if err := validate(&cfg); err != nil {
		return nil, err
	}

	rig := cfg.Rig
	pl := planner.New(plannerConfig(cfg), cfg.Road)
	pipe := perception.NewPipeline(cfg.Perception, cfg.Seed)

	egoState := cfg.EgoInit
	appliedAccel := 0.0

	type actorRT struct {
		spec  ActorSpec
		state vehicle.FrenetState
	}
	actors := make([]*actorRT, len(cfg.Actors))
	for i, spec := range cfg.Actors {
		actors[i] = &actorRT{spec: spec, state: spec.Init}
	}

	rates := make(map[string]float64, len(rig))
	nextFrame := make(map[string]float64, len(rig))
	frames := make(map[string]int, len(rig))
	for _, c := range rig {
		rates[c.Name] = cfg.FPR
		nextFrame[c.Name] = 0
	}

	tr := &trace.Trace{Meta: trace.Meta{
		Scenario: cfg.Name,
		FPR:      cfg.FPR,
		Seed:     cfg.Seed,
		Dt:       cfg.Dt,
		Cameras:  rig.Names(),
	}}
	res := &Result{Trace: tr, FramesProcessed: frames, MinBumperGap: math.Inf(1)}

	nextRateUpdate := 0.0
	steps := int(math.Round(cfg.Duration / cfg.Dt))
	for step := 0; step <= steps; step++ {
		t := float64(step) * cfg.Dt

		// Ground truth for this instant.
		egoAgent := egoState.ToAgent(cfg.Road, world.EgoID, cfg.EgoParams)
		egoAgent.Accel = appliedAccel
		actorAgents := make([]world.Agent, len(actors))
		for i, a := range actors {
			actorAgents[i] = a.state.ToAgent(cfg.Road, a.spec.ID, a.spec.Params)
		}

		// Collision detection.
		if res.Collision == nil {
			egoBox := egoAgent.BBox()
			for _, a := range actorAgents {
				if egoBox.Intersects(a.BBox()) {
					res.Collision = &trace.Collision{Time: t, ActorID: a.ID}
					break
				}
			}
		}
		if res.Collision != nil && cfg.StopOnCollision {
			break
		}

		// Closest-approach bookkeeping.
		updateMinGap(res, cfg.Road, egoState, egoAgent, actorAgents)

		// Camera frames due at this step.
		for _, cam := range rig {
			if t+1e-9 < nextFrame[cam.Name] {
				continue
			}
			pipe.ProcessFrame(cam, t, egoAgent, actorAgents)
			frames[cam.Name]++
			rate := rates[cam.Name]
			if rate <= 0 {
				rate = 1
			}
			// Advance the schedule from the previous due time, not from t,
			// so the fixed step grid does not quantize the effective rate
			// down (e.g. a 33.3 ms interval snapping to 40 ms).
			next := nextFrame[cam.Name] + 1/rate
			if next <= t {
				next = t + 1/rate
			}
			nextFrame[cam.Name] = next
		}

		// Perceived world model and planning.
		wm := pipe.WorldModel(t)
		dec := pl.Plan(egoState, cfg.EgoParams, wm)
		appliedAccel = cfg.EgoParams.ClampAccel(dec.Accel, egoState.Speed)
		egoAgent.Accel = appliedAccel

		// Dynamic rate control.
		if cfg.RateController != nil && t+1e-9 >= nextRateUpdate {
			for name, r := range cfg.RateController.Rates(t, egoAgent, wm) {
				if _, ok := rates[name]; ok && r > 0 {
					rates[name] = r
				}
			}
			nextRateUpdate = t + cfg.RateEpoch
		}

		// Record. Per-row rates only exist under dynamic rate control;
		// fixed-rate runs leave Rates nil and readers fall back to
		// Meta.FPR (trace.OperatingRate). Recording the identical map on
		// every row would bloat each archived trace by thousands of
		// redundant entries and dominate replay decode time.
		var rowRates map[string]float64
		if cfg.RateController != nil {
			rowRates = snapshotRates(rates)
		}
		tr.Rows = append(tr.Rows, trace.Row{
			Time:     t,
			Ego:      egoAgent,
			Actors:   actorAgents,
			CmdAccel: appliedAccel,
			AEB:      dec.AEB,
			Rates:    rowRates,
		})

		// Advance dynamics.
		egoState.Accel = appliedAccel
		egoState = egoState.Step(cfg.Dt)
		if egoState.Speed == 0 {
			res.EgoStopped = true
		}
		ctx := behavior.Context{Time: t, Road: cfg.Road, Ego: egoState}
		for _, a := range actors {
			if a.spec.Script != nil {
				a.state = a.spec.Script.Step(ctx, a.state, cfg.Dt)
			} else {
				a.state = a.state.Step(cfg.Dt)
			}
		}
	}

	if res.Collision != nil {
		tr.Collision = res.Collision
	}
	return res, nil
}

// ValidateConfig checks a configuration the same way Run does —
// road/duration/rate sanity, duplicate actor IDs — without running it.
// Defaults (dt, rig, perception, rate epoch) are applied to a copy, so
// the caller's configuration is not mutated. Scenario tooling uses this
// to vet generated corpora cheaply.
func ValidateConfig(cfg Config) error { return validate(&cfg) }

func validate(cfg *Config) error {
	if cfg.Road == nil {
		return fmt.Errorf("sim: nil road")
	}
	if err := cfg.Road.Validate(); err != nil {
		return fmt.Errorf("sim: %w", err)
	}
	if cfg.Duration <= 0 {
		return fmt.Errorf("sim: non-positive duration %v", cfg.Duration)
	}
	if cfg.Dt == 0 {
		cfg.Dt = 0.01
	}
	if cfg.Dt < 0 {
		return fmt.Errorf("sim: negative dt %v", cfg.Dt)
	}
	if cfg.FPR <= 0 {
		return fmt.Errorf("sim: non-positive FPR %v", cfg.FPR)
	}
	if cfg.Rig == nil {
		cfg.Rig = sensor.DefaultRig()
	}
	if cfg.RateEpoch <= 0 {
		cfg.RateEpoch = 0.1
	}
	if cfg.Perception.ConfirmFrames == 0 {
		cfg.Perception = perception.DefaultConfig()
	}
	ids := map[string]bool{world.EgoID: true}
	for _, a := range cfg.Actors {
		if ids[a.ID] {
			return fmt.Errorf("sim: duplicate actor ID %q", a.ID)
		}
		ids[a.ID] = true
	}
	return nil
}

func plannerConfig(cfg Config) planner.Config {
	if cfg.Planner != nil {
		return *cfg.Planner
	}
	return planner.DefaultConfig(cfg.DesiredSpeed, cfg.EgoParams)
}

func updateMinGap(res *Result, r *road.Road, ego vehicle.FrenetState, egoAgent world.Agent, actors []world.Agent) {
	for _, a := range actors {
		s, d := r.Frenet(a.Pose.Pos)
		if math.Abs(d-ego.D) > 2.2 {
			continue
		}
		gap := math.Abs(s-ego.S) - (egoAgent.Length+a.Length)/2
		if gap < res.MinBumperGap {
			res.MinBumperGap = gap
		}
	}
}

func snapshotRates(rates map[string]float64) map[string]float64 {
	out := make(map[string]float64, len(rates))
	for k, v := range rates {
		out[k] = v
	}
	return out
}

// SortedCameraNames returns rate-map keys in stable order (helper for
// deterministic reporting).
func SortedCameraNames(rates map[string]float64) []string {
	names := make([]string, 0, len(rates))
	for k := range rates {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}
