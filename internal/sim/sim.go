// Package sim is the closed-loop driving simulator: scripted actors and
// the AV stack (camera rig → perception at a configurable per-camera
// frame processing rate → planner → vehicle dynamics) advance on a fixed
// 10 ms step with oriented-bounding-box collision detection, recording a
// trace of every time-step.
//
// It substitutes for the paper's NVIDIA DriveSim + AV-stack testbed (see
// DESIGN.md): the property the experiments need is that the closed-loop
// collision outcome depends on the configured frame processing rate,
// which it does here through perception staleness and K-frame actor
// confirmation.
//
// # Steppable core
//
// The simulator is a Simulation value advanced one time-step at a time:
// New(cfg) validates and positions it before step 0, Step() runs one
// fixed-dt instant through the stage pipeline, Done() reports
// completion, and Result() returns the outcome. Run is the convenience
// loop over exactly that API. Each step executes the stages in order:
//
//	ground truth → collision check → camera schedule → perception →
//	planning → rate control → record → dynamics
//
// (StageNames lists them). The seams let callers interpose between
// steps — per-stage perception monitors, latency models, alternative
// planners probe the simulation state mid-run instead of parsing a
// finished trace.
//
// # Recording levels
//
// Config.Record selects how much of the run is materialized
// (trace.LevelFull / LevelSummary / LevelOff). Summary consumers — MRF
// collision waves, campaign servers streaming per-point summaries,
// corpus sweeps — skip the per-step row recording entirely, which is
// the dominant allocation of a run; the summary fields (collision, min
// bumper gap, frames processed, ego stopped) are computed at every
// level. Only LevelFull results are archivable by the persistent store.
package sim

import (
	"fmt"
	"maps"
	"slices"

	"repro/internal/behavior"
	"repro/internal/perception"
	"repro/internal/planner"
	"repro/internal/road"
	"repro/internal/sensor"
	"repro/internal/trace"
	"repro/internal/vehicle"
	"repro/internal/world"
)

// Version identifies the simulator's behavioral revision. The
// persistent run store keys archived traces on it, so any change to
// simulation semantics (integration step, perception model, planner
// defaults, collision handling) must bump it — otherwise replay would
// diff traces recorded under different dynamics and report false
// divergences (or, worse, serve stale disk results as cache hits).
const Version = "sim-v1"

// ActorSpec describes one scripted actor.
type ActorSpec struct {
	ID     string
	Params vehicle.Params
	Init   vehicle.FrenetState
	Script *behavior.Script // nil: cruise at the initial speed (or stay static)
}

// RateController adjusts per-camera processing rates at runtime. The
// Zhuyi-based work prioritizer in internal/safety implements this; a nil
// controller means fixed rates.
type RateController interface {
	// Rates returns the desired FPR per camera name given the current
	// perceived world model. Cameras absent from the result keep their
	// previous rate. The wm slice is scratch the simulator reuses
	// between invocations: copy it if the controller retains state
	// across calls.
	Rates(now float64, ego world.Agent, wm []world.Agent) map[string]float64
}

// Config describes one simulation run.
type Config struct {
	Name         string
	Road         *road.Road
	EgoInit      vehicle.FrenetState
	EgoParams    vehicle.Params
	DesiredSpeed float64
	Planner      *planner.Config // nil: DefaultConfig(DesiredSpeed, EgoParams)
	Actors       []ActorSpec

	Duration float64 // s
	Dt       float64 // s; 0 defaults to 0.01

	Rig        sensor.Rig // nil: sensor.DefaultRig()
	Perception perception.Config
	FPR        float64 // uniform initial per-camera rate, frames/s

	RateController RateController
	RateEpoch      float64 // controller invocation period, s; 0 defaults to 0.1

	// Record selects the trace recording level. The zero value is
	// trace.LevelFull (every row, archivable); LevelSummary and
	// LevelOff skip row materialization for summary-only consumers.
	Record trace.Level

	Seed            int64
	StopOnCollision bool
}

// Result is the outcome of a run.
type Result struct {
	// Trace is the recorded execution: all rows at trace.LevelFull,
	// header-only (Meta and Collision, no rows) at LevelSummary, nil at
	// LevelOff.
	Trace           *trace.Trace
	Collision       *trace.Collision
	FramesProcessed map[string]int
	MinBumperGap    float64 // closest longitudinal approach to any in-corridor actor, m
	EgoStopped      bool    // the ego came to a complete stop at least once
	// Level is the recording level the run executed at. The persistent
	// store refuses to archive anything but trace.LevelFull.
	Level trace.Level
}

// Collided reports whether the run ended in a collision.
func (r *Result) Collided() bool { return r.Collision != nil }

// Run executes the scenario to completion and returns the recorded
// result: the convenience loop over New / Step / Result.
func Run(cfg Config) (*Result, error) {
	s, err := New(cfg)
	if err != nil {
		return nil, err
	}
	for s.Step() {
	}
	return s.Result(), nil
}

// ValidateConfig checks a configuration the same way Run does —
// road/duration/rate sanity, duplicate actor IDs — without running it.
// Defaults (dt, rig, perception, rate epoch) are applied to a copy, so
// the caller's configuration is not mutated. Scenario tooling uses this
// to vet generated corpora cheaply.
func ValidateConfig(cfg Config) error { return validate(&cfg) }

func validate(cfg *Config) error {
	if cfg.Road == nil {
		return fmt.Errorf("sim: nil road")
	}
	if err := cfg.Road.Validate(); err != nil {
		return fmt.Errorf("sim: %w", err)
	}
	if cfg.Duration <= 0 {
		return fmt.Errorf("sim: non-positive duration %v", cfg.Duration)
	}
	if cfg.Dt == 0 {
		cfg.Dt = 0.01
	}
	if cfg.Dt < 0 {
		return fmt.Errorf("sim: negative dt %v", cfg.Dt)
	}
	if cfg.FPR <= 0 {
		return fmt.Errorf("sim: non-positive FPR %v", cfg.FPR)
	}
	if cfg.Record > trace.LevelOff {
		return fmt.Errorf("sim: invalid recording level %d", cfg.Record)
	}
	if cfg.Rig == nil {
		cfg.Rig = sensor.DefaultRig()
	}
	if cfg.RateEpoch <= 0 {
		cfg.RateEpoch = 0.1
	}
	if cfg.Perception.ConfirmFrames == 0 {
		cfg.Perception = perception.DefaultConfig()
	}
	ids := map[string]bool{world.EgoID: true}
	for _, a := range cfg.Actors {
		if ids[a.ID] {
			return fmt.Errorf("sim: duplicate actor ID %q", a.ID)
		}
		ids[a.ID] = true
	}
	return nil
}

func plannerConfig(cfg Config) planner.Config {
	if cfg.Planner != nil {
		return *cfg.Planner
	}
	return planner.DefaultConfig(cfg.DesiredSpeed, cfg.EgoParams)
}

// SortedCameraNames returns rate-map keys in stable order (helper for
// deterministic reporting).
func SortedCameraNames(rates map[string]float64) []string {
	return slices.Sorted(maps.Keys(rates))
}
