package sim

import (
	"math"

	"repro/internal/behavior"
	"repro/internal/perception"
	"repro/internal/planner"
	"repro/internal/trace"
	"repro/internal/vehicle"
	"repro/internal/world"
)

// actorRT is one scripted actor's runtime state.
type actorRT struct {
	spec  ActorSpec
	state vehicle.FrenetState
}

// stage is one named phase of a simulation step. Stages run in
// pipeline order; a stage that finishes the run (collision with
// StopOnCollision) short-circuits the rest of the step.
type stage struct {
	name string
	run  func(*Simulation)
}

// pipeline is the per-step stage order. Method values carry no
// closure state, so building the table allocates nothing per step.
func pipeline() []stage {
	return []stage{
		{"ground-truth", (*Simulation).stageGroundTruth},
		{"collision-check", (*Simulation).stageCollision},
		{"camera-schedule", (*Simulation).stageCameras},
		{"perception", (*Simulation).stagePerception},
		{"planning", (*Simulation).stagePlanning},
		{"rate-control", (*Simulation).stageRateControl},
		{"record", (*Simulation).stageRecord},
		{"dynamics", (*Simulation).stageDynamics},
	}
}

// StageNames lists the per-step stage pipeline in execution order.
func StageNames() []string {
	stages := pipeline()
	names := make([]string, len(stages))
	for i, st := range stages {
		names[i] = st.name
	}
	return names
}

// Simulation is a closed-loop run advanced one fixed-dt step at a
// time. Construct with New, drive with Step until it reports false
// (or Done), and read the outcome with Result. The per-step
// accessors (Time, Ego, Actors, WorldModel, Rates) expose the live
// state between steps, which is the seam stage plug-ins — perception
// monitors, latency models, alternative planners — observe the run
// through without waiting for a finished trace.
//
// The ground-truth scene and everything derived from it alone (the
// collision sweep, the min-gap candidate, camera cones, occlusion,
// per-camera visibility) live in a stepShare: a solo run owns a
// private one; a lockstep Batch points every state-identical variant
// at the leader's, so the group pays for the shared work once.
//
// A Simulation is single-goroutine; the engine provides concurrency
// across runs, not within one.
type Simulation struct {
	cfg    Config
	stages []stage

	pl   *planner.Planner
	pipe *perception.Pipeline

	res *Result
	tr  *trace.Trace

	egoState     vehicle.FrenetState
	appliedAccel float64
	actors       []actorRT

	// Per-camera state, indexed like cfg.Rig; camNames mirrors the rig
	// names for map materialization at the API boundary.
	camNames    []string
	rateVals    []float64
	nextFrame   []float64 // next frame due per rig camera, s
	frameCounts []int
	framesView  map[string]int // Result's map view, refreshed on Result()

	// Footprint radius bound (world.FootprintRadiusBound) of the ego
	// for the collision pre-filter, fixed per run.
	egoDiag float64

	steps, step    int
	done           bool
	nextRateUpdate float64

	// own is this simulation's private step context; sh is the one in
	// use — own when running solo or leading a lockstep group, the
	// leader's while following one.
	own *stepShare
	sh  *stepShare

	// Per-step working state, valid between stages of the current step.
	t          float64
	egoAgent   world.Agent
	bctx       behavior.Context // reusable scripted-dynamics context
	dec        planner.Decision
	wm         []world.Agent // perceived world model scratch, reused
	actorsView []world.Agent // materialized ground-truth rows (lazy off LevelFull)
	actorsLive bool          // actorsView matches the current step's frame

	// rowActors is the LevelFull per-row actor storage: one backing
	// array carved into a disjoint sub-slice per recorded row, so the
	// hot loop never allocates per step while every row still owns its
	// actor states.
	rowActors []world.Agent
	// scratch is the Summary/Off ground-truth view buffer, materialized
	// only when Actors() is called (no rows retain it).
	scratch []world.Agent
}

// New validates the configuration and returns a simulation positioned
// before step 0. Defaults (dt, rig, perception, rate epoch) are
// applied to the simulation's private copy of cfg.
func New(cfg Config) (*Simulation, error) {
	if err := validate(&cfg); err != nil {
		return nil, err
	}

	s := &Simulation{
		cfg:    cfg,
		stages: pipeline(),
		pl:     planner.New(plannerConfig(cfg), cfg.Road),
		pipe:   perception.NewPipeline(cfg.Perception, cfg.Seed),

		egoState: cfg.EgoInit,
		actors:   make([]actorRT, len(cfg.Actors)),

		camNames:    cfg.Rig.Names(),
		rateVals:    make([]float64, len(cfg.Rig)),
		nextFrame:   make([]float64, len(cfg.Rig)),
		frameCounts: make([]int, len(cfg.Rig)),
		framesView:  make(map[string]int, len(cfg.Rig)),

		steps: int(math.Round(cfg.Duration / cfg.Dt)),
	}
	s.egoDiag = world.FootprintRadiusBound(cfg.EgoParams.Length, cfg.EgoParams.Width)
	for i, spec := range cfg.Actors {
		s.actors[i] = actorRT{spec: spec, state: spec.Init}
	}
	for ci := range cfg.Rig {
		s.rateVals[ci] = cfg.FPR
	}
	s.own = newStepShare(cfg.Rig, len(cfg.Actors))
	s.sh = s.own

	if cfg.Record != trace.LevelOff {
		s.tr = &trace.Trace{Meta: trace.Meta{
			Scenario: cfg.Name,
			FPR:      cfg.FPR,
			Seed:     cfg.Seed,
			Dt:       cfg.Dt,
			Cameras:  cfg.Rig.Names(),
		}}
	}
	if cfg.Record == trace.LevelFull {
		s.tr.Rows = make([]trace.Row, 0, s.steps+1)
		s.rowActors = make([]world.Agent, (s.steps+1)*len(s.actors))
	} else {
		s.scratch = make([]world.Agent, 0, len(s.actors))
	}
	s.res = &Result{
		Trace:           s.tr,
		FramesProcessed: s.framesView,
		MinBumperGap:    math.Inf(1),
		Level:           cfg.Record,
	}
	return s, nil
}

// Step advances the simulation by one time-step, running the stage
// pipeline for the current instant. It reports whether more steps
// remain; it is a no-op returning false once the run has finished.
func (s *Simulation) Step() bool {
	if s.done {
		return false
	}
	s.t = float64(s.step) * s.cfg.Dt
	for _, st := range s.stages {
		st.run(s)
		if s.done {
			return false
		}
	}
	s.step++
	if s.step > s.steps {
		s.done = true
	}
	return !s.done
}

// Done reports whether the run has finished: every step executed, or a
// collision ended it under StopOnCollision.
func (s *Simulation) Done() bool { return s.done }

// Result returns the run outcome. It may be read mid-run (external
// drivers that stop early still get a coherent summary); the trace
// mirror of the collision and the frames-processed view are refreshed
// on every call.
func (s *Simulation) Result() *Result {
	for ci, name := range s.camNames {
		// Cameras that processed no frames stay absent, matching the
		// increment-on-first-frame map the result historically carried.
		if s.frameCounts[ci] > 0 {
			s.framesView[name] = s.frameCounts[ci]
		}
	}
	if s.tr != nil {
		s.tr.Collision = s.res.Collision
	}
	return s.res
}

// Time returns the simulation time of the next step to execute (or,
// mid-pipeline, of the executing step).
func (s *Simulation) Time() float64 { return float64(s.step) * s.cfg.Dt }

// StepIndex returns the index of the next step to execute.
func (s *Simulation) StepIndex() int { return s.step }

// Steps returns the total step count of a full-length run (the final
// step index is Steps, giving Steps+1 recorded instants).
func (s *Simulation) Steps() int { return s.steps }

// Ego returns the ego's ground-truth agent state as of the most
// recently executed ground-truth stage.
func (s *Simulation) Ego() world.Agent { return s.egoAgent }

// Actors returns the ground-truth actor states of the current step,
// materialized lazily from the frame at summary levels. The slice is
// live simulation state: read, don't hold.
func (s *Simulation) Actors() []world.Agent {
	if !s.actorsLive {
		s.actorsView = s.sh.frame.AppendAgents(s.scratch[:0])
		s.actorsLive = true
	}
	return s.actorsView
}

// WorldModel returns the perceived world model of the current step.
// The slice is scratch the simulation reuses: read, don't hold.
func (s *Simulation) WorldModel() []world.Agent { return s.wm }

// Rates returns a snapshot of the per-camera operating rates.
func (s *Simulation) Rates() map[string]float64 { return s.ratesMap() }

// ratesMap materializes the per-camera rate slice as a name-keyed map
// (the API/trace-row boundary representation).
func (s *Simulation) ratesMap() map[string]float64 {
	m := make(map[string]float64, len(s.camNames))
	for ci, name := range s.camNames {
		m[name] = s.rateVals[ci]
	}
	return m
}

// stageGroundTruth materializes the ground-truth scene for this
// instant — through the step share, so lockstep variants scatter the
// agents once — and derives the ego agent carrying the previously
// applied acceleration.
func (s *Simulation) stageGroundTruth() {
	sh := s.sh
	if sh.step != s.step {
		sh.beginStep(s.step, len(s.actors))
	}
	sh.ensureGround(s)
	s.egoAgent = sh.egoAgent
	s.egoAgent.Accel = s.appliedAccel

	if s.cfg.Record == trace.LevelFull {
		// Carve this row's disjoint slice out of the preallocated
		// backing array; the record stage hands it to the trace row.
		base := s.step * len(s.actors)
		s.actorsView = sh.frame.AppendAgents(s.rowActors[base : base : base+len(s.actors)])
		s.actorsLive = true
	} else {
		// Summary levels materialize rows only if Actors() asks.
		s.actorsLive = false
	}
}

// stageCollision detects the first ego collision, ends the run if
// configured to stop on it, and maintains the closest-approach
// bookkeeping. The sweeps run once per instant in the step share.
func (s *Simulation) stageCollision() {
	sh := s.sh
	if s.res.Collision == nil {
		sh.ensureCollision(s.egoDiag)
		if sh.collided {
			s.res.Collision = sh.collision(s.t)
		}
	}
	if s.res.Collision != nil && s.cfg.StopOnCollision {
		s.done = true
		return
	}
	sh.ensureMinGap(s)
	if sh.stepMinGap < s.res.MinBumperGap {
		s.res.MinBumperGap = sh.stepMinGap
	}
}

// stageCameras processes every camera frame due at this instant and
// advances each camera's schedule by its current operating rate. The
// visible-actor index list comes from the step share: cameras due at
// the same instant for several lockstep variants compute it once.
func (s *Simulation) stageCameras() {
	sh := s.sh
	for ci := range s.cfg.Rig {
		if s.t+1e-9 < s.nextFrame[ci] {
			continue
		}
		s.pipe.ProcessFrameIdx(sh.ensureCones(), ci, s.t, sh.frame, sh.visibleIdx(ci))
		s.frameCounts[ci]++
		rate := s.rateVals[ci]
		if rate <= 0 {
			rate = 1
		}
		// Advance the schedule from the previous due time, not from t,
		// so the fixed step grid does not quantize the effective rate
		// down (e.g. a 33.3 ms interval snapping to 40 ms).
		next := s.nextFrame[ci] + 1/rate
		if next <= s.t {
			next = s.t + 1/rate
		}
		s.nextFrame[ci] = next
	}
}

// stagePerception coasts every confirmed track to this instant,
// producing the perceived world model the planner consumes.
func (s *Simulation) stagePerception() {
	s.wm = s.pipe.WorldModelAppend(s.wm[:0], s.t)
}

// stagePlanning runs the driving policy on the perceived world and
// clamps the command to the vehicle's envelope.
func (s *Simulation) stagePlanning() {
	s.dec = s.pl.Plan(s.egoState, s.cfg.EgoParams, s.wm)
	s.appliedAccel = s.cfg.EgoParams.ClampAccel(s.dec.Accel, s.egoState.Speed)
	s.egoAgent.Accel = s.appliedAccel
}

// stageRateControl invokes the dynamic rate controller on its epoch.
func (s *Simulation) stageRateControl() {
	if s.cfg.RateController == nil || s.t+1e-9 < s.nextRateUpdate {
		return
	}
	rates := s.cfg.RateController.Rates(s.t, s.egoAgent, s.wm)
	for ci, name := range s.camNames {
		if r, ok := rates[name]; ok && r > 0 {
			s.rateVals[ci] = r
		}
	}
	s.nextRateUpdate = s.t + s.cfg.RateEpoch
}

// stageRecord appends this instant's trace row at trace.LevelFull;
// summary levels skip row materialization entirely. Per-row rates
// only exist under dynamic rate control; fixed-rate runs leave Rates
// nil and readers fall back to Meta.FPR (trace.OperatingRate).
// Recording the identical map on every row would bloat each archived
// trace by thousands of redundant entries and dominate replay decode
// time.
func (s *Simulation) stageRecord() {
	if s.cfg.Record != trace.LevelFull {
		return
	}
	var rowRates map[string]float64
	if s.cfg.RateController != nil {
		rowRates = s.ratesMap()
	}
	s.tr.Rows = append(s.tr.Rows, trace.Row{
		Time:     s.t,
		Ego:      s.egoAgent,
		Actors:   s.actorsView,
		CmdAccel: s.appliedAccel,
		AEB:      s.dec.AEB,
		Rates:    rowRates,
	})
}

// stageDynamics integrates the ego and every scripted actor forward
// one dt.
func (s *Simulation) stageDynamics() {
	s.egoState.Accel = s.appliedAccel
	s.egoState.StepInPlace(s.cfg.Dt)
	if s.egoState.Speed == 0 {
		s.res.EgoStopped = true
	}
	// bctx lives on the Simulation so taking its address does not force
	// a per-step heap allocation (Script.StepInto takes a pointer).
	s.bctx.Time = s.t
	s.bctx.Road = s.cfg.Road
	s.bctx.Ego = s.egoState
	for i := range s.actors {
		a := &s.actors[i]
		if a.spec.Script != nil {
			a.spec.Script.StepInto(&s.bctx, &a.state, s.cfg.Dt)
		} else {
			a.state.StepInPlace(s.cfg.Dt)
		}
	}
}
