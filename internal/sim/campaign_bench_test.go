package sim_test

// Campaign-scale benchmarks comparing the recording levels and the
// frozen pre-refactor loop on the paper-protocol workload: every
// Table-1 scenario at every Table-1 rate, ten seeds each (1080
// points), scheduled through the run engine exactly as `zhuyi
// campaign` would. scripts/bench_sim.sh renders these into
// BENCH_sim.json and gates the summary-vs-legacy speedup.

import (
	"context"
	"testing"

	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/trace"
)

func campaignJobs() []engine.Job {
	var jobs []engine.Job
	for _, sc := range scenario.All() {
		for _, fpr := range metrics.DefaultFPRGrid() {
			for seed := int64(1); seed <= 10; seed++ {
				jobs = append(jobs, engine.Job{Scenario: sc, FPR: fpr, Seed: seed})
			}
		}
	}
	return jobs
}

func benchmarkCampaign(b *testing.B, opts engine.Options) {
	jobs := campaignJobs()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		eng := engine.New(opts)
		br, err := eng.RunBatch(context.Background(), jobs)
		eng.Close()
		if err != nil {
			b.Fatal(err)
		}
		if br.Stats.Executed != len(jobs) {
			b.Fatalf("executed %d of %d points", br.Stats.Executed, len(jobs))
		}
	}
	b.ReportMetric(float64(len(jobs)), "points/op")
}

// BenchmarkCampaignLegacyLoop runs the campaign through the frozen
// pre-refactor monolithic loop (always-full recording, per-step
// allocation): the baseline this PR's sim-to-server hot path is
// measured against.
func BenchmarkCampaignLegacyLoop(b *testing.B) {
	benchmarkCampaign(b, engine.Options{Runner: func(j engine.Job) (*sim.Result, error) {
		return legacyRun(j.Scenario.Build(j.FPR, j.Seed))
	}})
}

// BenchmarkCampaignFullTrace is the steppable core at full recording.
func BenchmarkCampaignFullTrace(b *testing.B) {
	benchmarkCampaign(b, engine.Options{Record: trace.LevelFull})
}

// BenchmarkCampaignSummaryOnly is the steppable core at summary level:
// the configuration the campaign server, MRF searches, and corpus
// sweeps run at.
func BenchmarkCampaignSummaryOnly(b *testing.B) {
	benchmarkCampaign(b, engine.Options{Record: trace.LevelSummary})
}
