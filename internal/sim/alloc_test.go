//go:build !race

// The allocation-budget regression gate for the step hot path. Race
// instrumentation perturbs allocation counts, so the gate only runs in
// non-race builds (CI runs it as a dedicated job).

package sim

import (
	"testing"

	"repro/internal/trace"
)

// runAllocs measures total heap allocations of one complete run
// (construction included) at the given recording level.
func runAllocs(t *testing.T, lvl trace.Level) (allocs float64, steps int) {
	t.Helper()
	cfg := benchConfig(lvl)
	allocs = testing.AllocsPerRun(3, func() {
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		for s.Step() {
			n++
		}
		steps = n
	})
	return allocs, steps
}

// TestStepAllocationBudget pins the allocation diet: a whole
// multi-thousand-step run must stay within a fixed allocation budget,
// i.e. the per-step stage pipeline allocates (amortized) nothing. The
// pre-refactor loop allocated per step — ground-truth slice, world
// model, per-frame visibility scratch — which for the benchmark
// scenario meant thousands of allocations per run (see
// BenchmarkStepLegacyLoop); any regression back to per-step churn
// blows the budget by orders of magnitude.
func TestStepAllocationBudget(t *testing.T) {
	const budget = 256 // setup-only; ~2000 steps ⇒ <0.13 allocs/step
	for _, lvl := range []trace.Level{trace.LevelFull, trace.LevelSummary, trace.LevelOff} {
		allocs, steps := runAllocs(t, lvl)
		if steps < 1000 {
			t.Fatalf("%v: benchmark run too short (%d steps)", lvl, steps)
		}
		t.Logf("%v: %.0f allocs over %d steps (%.4f/step)", lvl, allocs, steps, allocs/float64(steps))
		if allocs > budget {
			t.Errorf("%v-level run allocated %.0f times (budget %d): the step path regressed to per-step allocation",
				lvl, allocs, budget)
		}
	}
}
