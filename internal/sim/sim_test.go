package sim

import (
	"math"
	"testing"

	"repro/internal/behavior"
	"repro/internal/perception"
	"repro/internal/road"
	"repro/internal/sensor"
	"repro/internal/units"
	"repro/internal/vehicle"
	"repro/internal/world"
)

// cleanPerception removes noise so closed-loop tests are deterministic.
func cleanPerception() perception.Config {
	cfg := perception.DefaultConfig()
	cfg.DetectProb = 1
	cfg.PosNoise = 0
	cfg.VelNoise = 0
	return cfg
}

func baseConfig(name string) Config {
	return Config{
		Name:            name,
		Road:            road.NewStraight(3, 5000),
		EgoParams:       vehicle.Car(),
		Duration:        20,
		FPR:             30,
		Perception:      cleanPerception(),
		Seed:            1,
		StopOnCollision: true,
	}
}

func TestFreeDriveHoldsSpeed(t *testing.T) {
	cfg := baseConfig("free")
	cfg.DesiredSpeed = units.MPHToMPS(40)
	cfg.EgoInit = vehicle.FrenetState{S: 0, D: 3.5, Speed: cfg.DesiredSpeed}
	cfg.Duration = 10

	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Collided() {
		t.Fatal("collision on empty road")
	}
	last := res.Trace.Rows[res.Trace.Len()-1]
	if math.Abs(last.Ego.Speed-cfg.DesiredSpeed) > 0.5 {
		t.Errorf("final speed = %v, want ~%v", last.Ego.Speed, cfg.DesiredSpeed)
	}
	wantS := cfg.DesiredSpeed * 10
	s, _ := cfg.Road.Frenet(last.Ego.Pose.Pos)
	if math.Abs(s-wantS) > 5 {
		t.Errorf("final station = %v, want ~%v", s, wantS)
	}
}

func TestFollowsBrakingLeadAtHighFPR(t *testing.T) {
	cfg := baseConfig("follow")
	cfg.DesiredSpeed = units.MPHToMPS(70)
	cfg.EgoInit = vehicle.FrenetState{S: 0, D: 3.5, Speed: cfg.DesiredSpeed}
	cfg.Duration = 25
	cfg.Actors = []ActorSpec{{
		ID:     "lead",
		Params: vehicle.Car(),
		Init:   vehicle.FrenetState{S: 50 + 4.6, D: 3.5, Speed: cfg.DesiredSpeed},
		Script: behavior.NewScript(behavior.Stage{
			When: behavior.AtTime(5),
			Do:   &behavior.BrakeTo{Target: 0, Decel: 6},
		}),
	}}

	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Collided() {
		t.Fatalf("collision at 30 FPR: %+v (min gap %v)", res.Collision, res.MinBumperGap)
	}
	if !res.EgoStopped {
		t.Error("ego never stopped behind the stopped lead")
	}
	if res.MinBumperGap <= 0 {
		t.Errorf("min bumper gap = %v", res.MinBumperGap)
	}
}

func TestLowFPRCausesCollisionHighFPRAvoidsIt(t *testing.T) {
	// The central simulator property for the paper's Table 1 (MRF): the
	// same scenario collides at a very low FPR and is safe at a high one.
	run := func(fpr float64) *Result {
		cfg := baseConfig("mrf-mechanism")
		cfg.DesiredSpeed = units.MPHToMPS(60)
		cfg.EgoInit = vehicle.FrenetState{S: 0, D: 3.5, Speed: cfg.DesiredSpeed}
		cfg.FPR = fpr
		cfg.Duration = 20
		// A static obstacle 100 m ahead at 60 mph: K-frame confirmation at
		// 1 FPR burns ~2.5 s (the two overlapping front cameras alternate
		// hits) before AEB can arm, which is too late; at 30 FPR the
		// obstacle confirms in ~0.1 s.
		cfg.Actors = []ActorSpec{{
			ID:     "obstacle",
			Params: vehicle.StaticObstacle(),
			Init:   vehicle.FrenetState{S: 100, D: 3.5},
		}}
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	low := run(1)
	high := run(30)
	if !low.Collided() {
		t.Errorf("1-FPR run avoided collision (min gap %v)", low.MinBumperGap)
	}
	if high.Collided() {
		t.Errorf("30-FPR run collided: %+v", high.Collision)
	}
}

func TestCollisionStopsSimulation(t *testing.T) {
	cfg := baseConfig("crash")
	cfg.DesiredSpeed = units.MPHToMPS(60)
	cfg.EgoInit = vehicle.FrenetState{S: 0, D: 3.5, Speed: cfg.DesiredSpeed}
	cfg.FPR = 1
	cfg.Perception.ConfirmFrames = 10 // pathological confirmation delay
	cfg.Actors = []ActorSpec{{
		ID:     "wall",
		Params: vehicle.StaticObstacle(),
		Init:   vehicle.FrenetState{S: 60, D: 3.5},
	}}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Collided() {
		t.Fatal("expected collision")
	}
	if res.Collision.ActorID != "wall" {
		t.Errorf("collision with %q", res.Collision.ActorID)
	}
	if res.Trace.Collision == nil {
		t.Error("collision not recorded in trace")
	}
	lastT := res.Trace.Rows[res.Trace.Len()-1].Time
	if lastT > res.Collision.Time {
		t.Errorf("rows recorded after collision: %v > %v", lastT, res.Collision.Time)
	}
}

func TestFramesProcessedMatchesFPR(t *testing.T) {
	cfg := baseConfig("frames")
	cfg.DesiredSpeed = 20
	cfg.EgoInit = vehicle.FrenetState{S: 0, D: 3.5, Speed: 20}
	cfg.Duration = 10
	cfg.FPR = 10
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, cam := range sensor.DefaultRig() {
		got := res.FramesProcessed[cam.Name]
		if got < 99 || got > 102 {
			t.Errorf("camera %s processed %d frames, want ~101", cam.Name, got)
		}
	}
}

type fixedRates map[string]float64

func (f fixedRates) Rates(float64, world.Agent, []world.Agent) map[string]float64 { return f }

func TestRateControllerAdjustsRates(t *testing.T) {
	cfg := baseConfig("rates")
	cfg.DesiredSpeed = 20
	cfg.EgoInit = vehicle.FrenetState{S: 0, D: 3.5, Speed: 20}
	cfg.Duration = 10
	cfg.FPR = 30
	cfg.RateController = fixedRates{sensor.Front120: 5, sensor.Left: 2}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	front := res.FramesProcessed[sensor.Front120]
	if front < 48 || front > 55 {
		t.Errorf("front camera frames = %d, want ~51 at 5 FPR", front)
	}
	left := res.FramesProcessed[sensor.Left]
	if left < 19 || left > 23 {
		t.Errorf("left camera frames = %d, want ~21 at 2 FPR", left)
	}
	// Uncontrolled cameras keep the configured rate.
	rear := res.FramesProcessed[sensor.Rear]
	if rear < 295 {
		t.Errorf("rear camera frames = %d, want ~301 at 30 FPR", rear)
	}
	// Rates are recorded in the trace.
	row := res.Trace.Rows[res.Trace.Len()-1]
	if row.Rates[sensor.Front120] != 5 {
		t.Errorf("recorded front rate = %v", row.Rates[sensor.Front120])
	}
}

func TestTraceRecordsEgoAccel(t *testing.T) {
	cfg := baseConfig("accel")
	cfg.DesiredSpeed = 30
	cfg.EgoInit = vehicle.FrenetState{S: 0, D: 3.5, Speed: 20}
	cfg.Duration = 5
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Ego starts below desired speed: early rows record positive accel.
	if res.Trace.Rows[10].Ego.Accel <= 0 {
		t.Errorf("recorded accel = %v, want > 0", res.Trace.Rows[10].Ego.Accel)
	}
	if res.Trace.Rows[10].CmdAccel != res.Trace.Rows[10].Ego.Accel {
		t.Error("CmdAccel and Ego.Accel disagree")
	}
}

func TestConfigValidation(t *testing.T) {
	good := baseConfig("ok")
	good.DesiredSpeed = 20
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"nil road", func(c *Config) { c.Road = nil }},
		{"zero duration", func(c *Config) { c.Duration = 0 }},
		{"negative dt", func(c *Config) { c.Dt = -0.01 }},
		{"zero fpr", func(c *Config) { c.FPR = 0 }},
		{"duplicate actor", func(c *Config) {
			c.Actors = []ActorSpec{
				{ID: "a", Params: vehicle.Car()},
				{ID: "a", Params: vehicle.Car()},
			}
		}},
		{"ego actor id", func(c *Config) {
			c.Actors = []ActorSpec{{ID: world.EgoID, Params: vehicle.Car()}}
		}},
	}
	for _, c := range cases {
		cfg := good
		c.mutate(&cfg)
		if _, err := Run(cfg); err == nil {
			t.Errorf("%s: no error", c.name)
		}
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	make2 := func(seed int64) *Result {
		cfg := baseConfig("det")
		cfg.DesiredSpeed = units.MPHToMPS(40)
		cfg.EgoInit = vehicle.FrenetState{S: 0, D: 3.5, Speed: cfg.DesiredSpeed}
		cfg.Perception = perception.DefaultConfig() // with noise
		cfg.Seed = seed
		cfg.Duration = 8
		cfg.Actors = []ActorSpec{{
			ID:     "lead",
			Params: vehicle.Car(),
			Init:   vehicle.FrenetState{S: 60, D: 3.5, Speed: 15},
		}}
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a := make2(42)
	b := make2(42)
	if a.Trace.Len() != b.Trace.Len() {
		t.Fatalf("row counts differ: %d vs %d", a.Trace.Len(), b.Trace.Len())
	}
	la := a.Trace.Rows[a.Trace.Len()-1].Ego.Pose.Pos
	lb := b.Trace.Rows[b.Trace.Len()-1].Ego.Pose.Pos
	if la != lb {
		t.Errorf("same seed diverged: %v vs %v", la, lb)
	}
	c := make2(43)
	lc := c.Trace.Rows[c.Trace.Len()-1].Ego.Pose.Pos
	if la == lc {
		t.Log("warning: different seeds produced identical end states")
	}
}
