package sim_test

// Golden equivalence suite for the steppable-core refactor: legacyRun
// below is a frozen, verbatim copy of the monolithic pre-refactor
// sim.Run (PR 1–4 era). For every registered scenario — the Table-1
// nine plus the ODD variants — across seeds and rates, the refactored
// stage pipeline must reproduce byte-identical trace serializations
// and identical result summaries, which is what lets the refactor ship
// without a sim.Version bump (the persistent store keeps serving
// archived traces recorded by the old loop).
//
// Do not "fix" or modernize legacyRun: its value is that it does not
// change.

import (
	"bytes"
	"fmt"
	"math"
	"reflect"
	"testing"

	"repro/internal/behavior"
	"repro/internal/perception"
	"repro/internal/planner"
	"repro/internal/road"
	"repro/internal/scenario"
	"repro/internal/sensor"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/units"
	"repro/internal/vehicle"
	"repro/internal/world"
)

// legacyValidate applies the frozen defaulting rules of the
// pre-refactor validate (the Record level did not exist then).
func legacyValidate(cfg *sim.Config) error {
	if cfg.Road == nil {
		return fmt.Errorf("sim: nil road")
	}
	if err := cfg.Road.Validate(); err != nil {
		return fmt.Errorf("sim: %w", err)
	}
	if cfg.Duration <= 0 {
		return fmt.Errorf("sim: non-positive duration %v", cfg.Duration)
	}
	if cfg.Dt == 0 {
		cfg.Dt = 0.01
	}
	if cfg.Dt < 0 {
		return fmt.Errorf("sim: negative dt %v", cfg.Dt)
	}
	if cfg.FPR <= 0 {
		return fmt.Errorf("sim: non-positive FPR %v", cfg.FPR)
	}
	if cfg.Rig == nil {
		cfg.Rig = sensor.DefaultRig()
	}
	if cfg.RateEpoch <= 0 {
		cfg.RateEpoch = 0.1
	}
	if cfg.Perception.ConfirmFrames == 0 {
		cfg.Perception = perception.DefaultConfig()
	}
	ids := map[string]bool{world.EgoID: true}
	for _, a := range cfg.Actors {
		if ids[a.ID] {
			return fmt.Errorf("sim: duplicate actor ID %q", a.ID)
		}
		ids[a.ID] = true
	}
	return nil
}

func legacyPlannerConfig(cfg sim.Config) planner.Config {
	if cfg.Planner != nil {
		return *cfg.Planner
	}
	return planner.DefaultConfig(cfg.DesiredSpeed, cfg.EgoParams)
}

func legacyUpdateMinGap(res *sim.Result, r *road.Road, ego vehicle.FrenetState, egoAgent world.Agent, actors []world.Agent) {
	for _, a := range actors {
		s, d := r.Frenet(a.Pose.Pos)
		if math.Abs(d-ego.D) > 2.2 {
			continue
		}
		gap := math.Abs(s-ego.S) - (egoAgent.Length+a.Length)/2
		if gap < res.MinBumperGap {
			res.MinBumperGap = gap
		}
	}
}

func legacySnapshotRates(rates map[string]float64) map[string]float64 {
	out := make(map[string]float64, len(rates))
	for k, v := range rates {
		out[k] = v
	}
	return out
}

// legacyRun is the frozen pre-refactor sim.Run.
func legacyRun(cfg sim.Config) (*sim.Result, error) {
	if err := legacyValidate(&cfg); err != nil {
		return nil, err
	}

	rig := cfg.Rig
	pl := planner.New(legacyPlannerConfig(cfg), cfg.Road)
	pipe := perception.NewPipeline(cfg.Perception, cfg.Seed)

	egoState := cfg.EgoInit
	appliedAccel := 0.0

	type actorRT struct {
		spec  sim.ActorSpec
		state vehicle.FrenetState
	}
	actors := make([]*actorRT, len(cfg.Actors))
	for i, spec := range cfg.Actors {
		actors[i] = &actorRT{spec: spec, state: spec.Init}
	}

	rates := make(map[string]float64, len(rig))
	nextFrame := make(map[string]float64, len(rig))
	frames := make(map[string]int, len(rig))
	for _, c := range rig {
		rates[c.Name] = cfg.FPR
		nextFrame[c.Name] = 0
	}

	tr := &trace.Trace{Meta: trace.Meta{
		Scenario: cfg.Name,
		FPR:      cfg.FPR,
		Seed:     cfg.Seed,
		Dt:       cfg.Dt,
		Cameras:  rig.Names(),
	}}
	res := &sim.Result{Trace: tr, FramesProcessed: frames, MinBumperGap: math.Inf(1)}

	nextRateUpdate := 0.0
	steps := int(math.Round(cfg.Duration / cfg.Dt))
	for step := 0; step <= steps; step++ {
		t := float64(step) * cfg.Dt

		// Ground truth for this instant.
		egoAgent := egoState.ToAgent(cfg.Road, world.EgoID, cfg.EgoParams)
		egoAgent.Accel = appliedAccel
		actorAgents := make([]world.Agent, len(actors))
		for i, a := range actors {
			actorAgents[i] = a.state.ToAgent(cfg.Road, a.spec.ID, a.spec.Params)
		}

		// Collision detection.
		if res.Collision == nil {
			egoBox := egoAgent.BBox()
			for _, a := range actorAgents {
				if egoBox.Intersects(a.BBox()) {
					res.Collision = &trace.Collision{Time: t, ActorID: a.ID}
					break
				}
			}
		}
		if res.Collision != nil && cfg.StopOnCollision {
			break
		}

		// Closest-approach bookkeeping.
		legacyUpdateMinGap(res, cfg.Road, egoState, egoAgent, actorAgents)

		// Camera frames due at this step.
		for _, cam := range rig {
			if t+1e-9 < nextFrame[cam.Name] {
				continue
			}
			pipe.ProcessFrame(cam, t, egoAgent, actorAgents)
			frames[cam.Name]++
			rate := rates[cam.Name]
			if rate <= 0 {
				rate = 1
			}
			next := nextFrame[cam.Name] + 1/rate
			if next <= t {
				next = t + 1/rate
			}
			nextFrame[cam.Name] = next
		}

		// Perceived world model and planning.
		wm := pipe.WorldModel(t)
		dec := pl.Plan(egoState, cfg.EgoParams, wm)
		appliedAccel = cfg.EgoParams.ClampAccel(dec.Accel, egoState.Speed)
		egoAgent.Accel = appliedAccel

		// Dynamic rate control.
		if cfg.RateController != nil && t+1e-9 >= nextRateUpdate {
			for name, r := range cfg.RateController.Rates(t, egoAgent, wm) {
				if _, ok := rates[name]; ok && r > 0 {
					rates[name] = r
				}
			}
			nextRateUpdate = t + cfg.RateEpoch
		}

		// Record.
		var rowRates map[string]float64
		if cfg.RateController != nil {
			rowRates = legacySnapshotRates(rates)
		}
		tr.Rows = append(tr.Rows, trace.Row{
			Time:     t,
			Ego:      egoAgent,
			Actors:   actorAgents,
			CmdAccel: appliedAccel,
			AEB:      dec.AEB,
			Rates:    rowRates,
		})

		// Advance dynamics.
		egoState.Accel = appliedAccel
		egoState = egoState.Step(cfg.Dt)
		if egoState.Speed == 0 {
			res.EgoStopped = true
		}
		ctx := behavior.Context{Time: t, Road: cfg.Road, Ego: egoState}
		for _, a := range actors {
			if a.spec.Script != nil {
				a.state = a.spec.Script.Step(&ctx, a.state, cfg.Dt)
			} else {
				a.state = a.state.Step(cfg.Dt)
			}
		}
	}

	if res.Collision != nil {
		tr.Collision = res.Collision
	}
	return res, nil
}

// goldenPoints are the (FPR, seed) samples each scenario is pinned at:
// the highest and a low Table-1 rate, with differing jitter seeds.
var goldenPoints = []struct {
	fpr  float64
	seed int64
}{{30, 1}, {3, 2}}

func traceBytes(t *testing.T, tr *trace.Trace) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatalf("serialize trace: %v", err)
	}
	return buf.Bytes()
}

// TestSteppableCoreMatchesFrozenRun pins the refactored stage pipeline
// to the frozen pre-refactor loop: byte-identical trace serializations
// and identical summaries for every registered scenario. This is the
// proof that sim.Version does not need to bump.
func TestSteppableCoreMatchesFrozenRun(t *testing.T) {
	for _, sc := range scenario.Default().List() {
		t.Run(sc.Name, func(t *testing.T) {
			t.Parallel()
			for _, pt := range goldenPoints {
				want, err := legacyRun(sc.Build(pt.fpr, pt.seed))
				if err != nil {
					t.Fatalf("fpr %g seed %d: legacy run: %v", pt.fpr, pt.seed, err)
				}
				got, err := sim.Run(sc.Build(pt.fpr, pt.seed))
				if err != nil {
					t.Fatalf("fpr %g seed %d: steppable run: %v", pt.fpr, pt.seed, err)
				}
				wb, gb := traceBytes(t, want.Trace), traceBytes(t, got.Trace)
				if !bytes.Equal(wb, gb) {
					t.Errorf("fpr %g seed %d: trace serialization differs (%d vs %d bytes)",
						pt.fpr, pt.seed, len(gb), len(wb))
					for i := range want.Trace.Rows {
						if i < len(got.Trace.Rows) && !reflect.DeepEqual(want.Trace.Rows[i], got.Trace.Rows[i]) {
							t.Errorf("first divergent row %d (t=%.2f)", i, want.Trace.Rows[i].Time)
							break
						}
					}
				}
				if !reflect.DeepEqual(want.Collision, got.Collision) {
					t.Errorf("fpr %g seed %d: collision %+v, want %+v", pt.fpr, pt.seed, got.Collision, want.Collision)
				}
				if !reflect.DeepEqual(want.FramesProcessed, got.FramesProcessed) {
					t.Errorf("fpr %g seed %d: frames %v, want %v", pt.fpr, pt.seed, got.FramesProcessed, want.FramesProcessed)
				}
				if want.MinBumperGap != got.MinBumperGap || want.EgoStopped != got.EgoStopped {
					t.Errorf("fpr %g seed %d: summary (gap %v stopped %v), want (gap %v stopped %v)",
						pt.fpr, pt.seed, got.MinBumperGap, got.EgoStopped, want.MinBumperGap, want.EgoStopped)
				}
			}
		})
	}
}

// TestSteppableCoreMatchesFrozenRunUnderRateControl covers the
// dynamic-rate path (per-row Rates maps) the registered scenarios
// don't exercise.
func TestSteppableCoreMatchesFrozenRunUnderRateControl(t *testing.T) {
	sc, ok := scenario.ByName(scenario.CutOutFast)
	if !ok {
		t.Fatal("cut-out-fast not registered")
	}
	cfg := sc.Build(30, 3)
	cfg.RateController = uniformRates{sensor.Front120: 12, sensor.Left: 4}
	want, err := legacyRun(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg2 := sc.Build(30, 3)
	cfg2.RateController = uniformRates{sensor.Front120: 12, sensor.Left: 4}
	got, err := sim.Run(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(traceBytes(t, want.Trace), traceBytes(t, got.Trace)) {
		t.Error("rate-controlled trace serialization differs")
	}
}

type uniformRates map[string]float64

func (u uniformRates) Rates(float64, world.Agent, []world.Agent) map[string]float64 { return u }

// TestSummaryLevelsMatchFullSummary proves the recording levels change
// only what is materialized, never what is computed: Summary and Off
// runs report the exact summary of the Full run.
func TestSummaryLevelsMatchFullSummary(t *testing.T) {
	for _, sc := range scenario.Default().List(scenario.TagTable1) {
		t.Run(sc.Name, func(t *testing.T) {
			t.Parallel()
			full, err := sim.Run(sc.Build(3, 1))
			if err != nil {
				t.Fatal(err)
			}
			for _, lvl := range []trace.Level{trace.LevelSummary, trace.LevelOff} {
				cfg := sc.Build(3, 1)
				cfg.Record = lvl
				got, err := sim.Run(cfg)
				if err != nil {
					t.Fatalf("%v run: %v", lvl, err)
				}
				if got.Level != lvl {
					t.Errorf("result level = %v, want %v", got.Level, lvl)
				}
				if !reflect.DeepEqual(full.Collision, got.Collision) ||
					full.MinBumperGap != got.MinBumperGap ||
					full.EgoStopped != got.EgoStopped ||
					!reflect.DeepEqual(full.FramesProcessed, got.FramesProcessed) {
					t.Errorf("%v summary diverges from full: %+v", lvl, got)
				}
				switch lvl {
				case trace.LevelSummary:
					if got.Trace == nil || len(got.Trace.Rows) != 0 {
						t.Errorf("summary trace = %+v, want header-only", got.Trace)
					}
					if got.Trace != nil && !reflect.DeepEqual(got.Trace.Meta, full.Trace.Meta) {
						t.Errorf("summary meta %+v, want %+v", got.Trace.Meta, full.Trace.Meta)
					}
					if got.Trace != nil && !reflect.DeepEqual(got.Trace.Collision, full.Collision) {
						t.Errorf("summary trace collision %+v, want %+v", got.Trace.Collision, full.Collision)
					}
				case trace.LevelOff:
					if got.Trace != nil {
						t.Errorf("off-level trace = %+v, want nil", got.Trace)
					}
				}
			}
		})
	}
}

// TestSteppableAPIObservesRun drives the steppable API directly: the
// per-step accessors expose a coherent mid-run view, and Step is a
// no-op after completion.
func TestSteppableAPIObservesRun(t *testing.T) {
	sc, _ := scenario.ByName(scenario.CutOut)
	cfg := sc.Build(30, 1)
	cfg.Record = trace.LevelSummary
	s, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if s.Steps() <= 0 {
		t.Fatalf("steps = %d", s.Steps())
	}
	steps := 0
	lastT := -1.0
	for s.Step() {
		steps++
		if s.Time() <= lastT {
			t.Fatalf("time did not advance: %v after %v", s.Time(), lastT)
		}
		lastT = s.Time()
		if s.Ego().ID != world.EgoID {
			t.Fatalf("ego agent = %+v", s.Ego())
		}
	}
	if !s.Done() {
		t.Error("Done() false after Step() returned false")
	}
	if s.Step() {
		t.Error("Step() after completion reported more work")
	}
	res := s.Result()
	if res == nil || res.Level != trace.LevelSummary {
		t.Fatalf("result = %+v", res)
	}
	if steps == 0 {
		t.Error("no steps observed")
	}
}

// TestStageNames pins the published stage order — the seam stage
// plug-ins and docs hang off.
func TestStageNames(t *testing.T) {
	want := []string{
		"ground-truth", "collision-check", "camera-schedule", "perception",
		"planning", "rate-control", "record", "dynamics",
	}
	if got := sim.StageNames(); !reflect.DeepEqual(got, want) {
		t.Errorf("stage order %v, want %v", got, want)
	}
}

// benchLegacyConfig mirrors the internal benchConfig scenario for the
// legacy-loop comparison benchmark (sim_test cannot reach the internal
// helper).
func benchLegacyConfig() sim.Config {
	speed := units.MPHToMPS(60)
	return sim.Config{
		Name:         "bench",
		Road:         road.NewStraight(3, 5000),
		EgoParams:    vehicle.Car(),
		EgoInit:      vehicle.FrenetState{S: 0, D: 3.5, Speed: speed},
		DesiredSpeed: speed,
		Duration:     20,
		FPR:          30,
		Perception:   cleanBenchPerception(),
		Seed:         1,
		Actors: []sim.ActorSpec{
			{ID: "lead", Params: vehicle.Car(), Init: vehicle.FrenetState{S: 60, D: 3.5, Speed: speed * 0.8}},
			{ID: "neighbor", Params: vehicle.Car(), Init: vehicle.FrenetState{S: 30, D: 7.0, Speed: speed * 0.9}},
		},
		StopOnCollision: true,
	}
}

func cleanBenchPerception() perception.Config {
	cfg := perception.DefaultConfig()
	cfg.DetectProb = 1
	cfg.PosNoise = 0
	cfg.VelNoise = 0
	return cfg
}

// BenchmarkStepLegacyLoop runs the frozen pre-refactor loop on the
// same scenario as BenchmarkStep/full: the allocs/op delta is the
// refactor's allocation diet (per-step ground-truth slices, world
// models, and visibility scratch eliminated).
func BenchmarkStepLegacyLoop(b *testing.B) {
	cfg := benchLegacyConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := legacyRun(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
