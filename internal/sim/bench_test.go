package sim

import (
	"testing"

	"repro/internal/road"
	"repro/internal/trace"
	"repro/internal/units"
	"repro/internal/vehicle"
)

// benchConfig is a representative closed-loop scenario: a braking lead
// plus a slow neighbor, 20 s at 10 ms steps with the default rig.
func benchConfig(record trace.Level) Config {
	cfg := baseConfig("bench")
	cfg.DesiredSpeed = units.MPHToMPS(60)
	cfg.EgoInit = vehicle.FrenetState{S: 0, D: 3.5, Speed: cfg.DesiredSpeed}
	cfg.Road = road.NewStraight(3, 5000)
	cfg.Record = record
	cfg.Actors = []ActorSpec{
		{ID: "lead", Params: vehicle.Car(), Init: vehicle.FrenetState{S: 60, D: 3.5, Speed: cfg.DesiredSpeed * 0.8}},
		{ID: "neighbor", Params: vehicle.Car(), Init: vehicle.FrenetState{S: 30, D: 7.0, Speed: cfg.DesiredSpeed * 0.9}},
	}
	return cfg
}

func benchmarkStep(b *testing.B, record trace.Level) {
	cfg := benchConfig(record)
	steps := 0
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s, err := New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		for s.Step() {
			steps++
		}
		if res := s.Result(); res.Level != record {
			b.Fatal("wrong level")
		}
	}
	b.ReportMetric(float64(steps)/float64(b.N), "steps/op")
}

// BenchmarkStep measures one full run through the stage pipeline per
// recording level; allocs/op is the step path's allocation budget the
// CI gate (TestStepAllocationBudget) enforces.
func BenchmarkStep(b *testing.B) {
	b.Run("full", func(b *testing.B) { benchmarkStep(b, trace.LevelFull) })
	b.Run("summary", func(b *testing.B) { benchmarkStep(b, trace.LevelSummary) })
	b.Run("off", func(b *testing.B) { benchmarkStep(b, trace.LevelOff) })
}
