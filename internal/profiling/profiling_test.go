package profiling

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

func TestDisabledIsNoOp(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	prof := Register(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	stop, err := prof.Start()
	if err != nil {
		t.Fatalf("Start with no flags: %v", err)
	}
	stop() // must not panic or write anything
}

func TestCapturesProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")

	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	prof := Register(fs)
	if err := fs.Parse([]string{"-cpuprofile", cpu, "-memprofile", mem}); err != nil {
		t.Fatal(err)
	}
	stop, err := prof.Start()
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	// Burn a little CPU so the profile has something to sample.
	x := 0.0
	for i := 0; i < 1e6; i++ {
		x += float64(i % 7)
	}
	_ = x
	stop()

	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile %s: %v", p, err)
		}
		if st.Size() == 0 {
			t.Fatalf("profile %s is empty", p)
		}
	}
}

func TestStartFailsOnBadPath(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	prof := Register(fs)
	bad := filepath.Join(t.TempDir(), "missing", "cpu.pprof")
	if err := fs.Parse([]string{"-cpuprofile", bad}); err != nil {
		t.Fatal(err)
	}
	if _, err := prof.Start(); err == nil {
		t.Fatal("Start with uncreatable path: want error")
	}
}
