// Package profiling wires pprof capture into the CLIs as a uniform
// flag pair: -cpuprofile streams a CPU profile over the whole command
// and -memprofile snapshots the heap on exit. The hot closed-loop
// paths (engine campaigns, the experiment sweeps) can then be profiled
// exactly as deployed — worker pools, store tiers, lockstep batching —
// rather than only through the Go test benchmarks.
//
// Usage:
//
//	prof := profiling.Register(fs)
//	fs.Parse(args)
//	stop, err := prof.Start()
//	if err != nil { ... }
//	defer stop()
//
// scripts/profile_sim.sh packages the common invocation; see
// docs/benchmarks.md for the analysis workflow.
package profiling

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Flags holds the profile destinations registered on a FlagSet.
type Flags struct {
	cpu *string
	mem *string
}

// Register adds -cpuprofile and -memprofile to fs (the process-wide
// flag.CommandLine works too) and returns the handle Start reads after
// parsing.
func Register(fs *flag.FlagSet) *Flags {
	return &Flags{
		cpu: fs.String("cpuprofile", "", "write a CPU profile of the whole command to this file"),
		mem: fs.String("memprofile", "", "write a heap profile to this file on exit"),
	}
}

// Start begins CPU profiling if -cpuprofile was given and returns a
// stop function that ends the CPU profile and, if -memprofile was
// given, writes the heap snapshot. The stop function reports capture
// problems on stderr (profiling failures should not fail the command)
// and is safe to call when neither flag was set — it does nothing.
func (f *Flags) Start() (stop func(), err error) {
	var cpuFile *os.File
	if *f.cpu != "" {
		cpuFile, err = os.Create(*f.cpu)
		if err != nil {
			return nil, fmt.Errorf("profiling: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("profiling: start CPU profile: %w", err)
		}
	}
	memPath := *f.mem
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "profiling: close CPU profile: %v\n", err)
			}
		}
		if memPath != "" {
			if err := writeHeap(memPath); err != nil {
				fmt.Fprintf(os.Stderr, "profiling: %v\n", err)
			}
		}
	}, nil
}

// writeHeap snapshots the heap after a GC, so the profile reflects
// live memory rather than collectable garbage.
func writeHeap(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		return fmt.Errorf("write heap profile: %w", err)
	}
	return nil
}
