package store

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"repro/internal/geom"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/world"
)

// syntheticResult builds a small but fully populated run result. The
// rows carry real agent state so round-trips exercise every trace
// field, and variant toggles collision / infinite-gap encoding.
func syntheticResult(scn string, fpr float64, seed int64, rows int, collide bool) *sim.Result {
	tr := &trace.Trace{Meta: trace.Meta{
		Scenario: scn, FPR: fpr, Seed: seed, Dt: 0.01,
		Cameras: []string{"front120", "left", "right"},
	}}
	for i := 0; i < rows; i++ {
		t := float64(i) * 0.01
		tr.Rows = append(tr.Rows, trace.Row{
			Time: t,
			Ego: world.Agent{
				ID: world.EgoID, Pose: geom.Pose{Pos: geom.V(20*t, 3.5)},
				Speed: 20, Accel: -0.5, Length: 4.6, Width: 1.9, Lane: 1,
			},
			Actors: []world.Agent{
				{ID: "a1", Pose: geom.Pose{Pos: geom.V(40+15*t, 3.5)}, Speed: 15, Length: 4.6, Width: 1.9, Lane: 1},
			},
			CmdAccel: -0.5,
			Rates:    map[string]float64{"front120": fpr, "left": fpr, "right": fpr},
		})
	}
	res := &sim.Result{
		Trace:           tr,
		FramesProcessed: map[string]int{"front120": rows / 3, "left": rows / 3, "right": rows / 3},
		MinBumperGap:    12.5,
		EgoStopped:      seed%2 == 0,
	}
	if collide {
		res.Collision = &trace.Collision{Time: float64(rows-1) * 0.01, ActorID: "a1"}
		tr.Collision = res.Collision
	} else if seed == 3 {
		res.MinBumperGap = math.Inf(1) // no in-corridor approach
	}
	return res
}

func key(scn string, fpr float64, seed int64) Key { return KeyFor(scn, fpr, seed) }

func TestPutGetRoundTrip(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	cases := []struct {
		seed    int64
		collide bool
	}{{1, false}, {2, true}, {3, false}} // seed 3: infinite min gap
	for _, tc := range cases {
		res := syntheticResult("rt", 10, tc.seed, 50, tc.collide)
		k := key("rt", 10, tc.seed)
		if _, _, err := st.Put("rt", k, res); err != nil {
			t.Fatalf("seed %d: %v", tc.seed, err)
		}
		got, ok, err := st.Get(k)
		if err != nil || !ok {
			t.Fatalf("seed %d: get ok=%v err=%v", tc.seed, ok, err)
		}
		if !reflect.DeepEqual(got, res) {
			t.Errorf("seed %d: reconstructed result differs\n got %+v\nwant %+v", tc.seed, got, res)
		}
	}
	if st.Len() != len(cases) {
		t.Errorf("Len = %d, want %d", st.Len(), len(cases))
	}
	if _, ok, err := st.Get(key("rt", 10, 99)); ok || err != nil {
		t.Errorf("miss: ok=%v err=%v", ok, err)
	}
}

func TestPutIdempotentAndContentDedup(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	res := syntheticResult("dedup", 5, 1, 40, false)
	k1 := key("dedup", 5, 1)
	e1, created, err := st.Put("dedup", k1, res)
	if err != nil {
		t.Fatal(err)
	}
	if !created {
		t.Error("first put reported created=false")
	}
	// Same key again: the original entry wins, nothing is rewritten.
	e1b, re, err := st.Put("dedup", k1, syntheticResult("dedup", 5, 1, 10, true))
	if err != nil {
		t.Fatal(err)
	}
	if re {
		t.Error("re-put reported created=true")
	}
	if !reflect.DeepEqual(e1, e1b) {
		t.Errorf("re-put replaced entry: %+v vs %+v", e1, e1b)
	}
	// Identical trace under a different key: one shared object.
	e2, _, err := st.Put("dedup", key("dedup", 5, 2), res)
	if err != nil {
		t.Fatal(err)
	}
	if e2.Artifact != e1.Artifact {
		t.Errorf("identical traces got different artifacts: %s vs %s", e1.Artifact, e2.Artifact)
	}
	var objects int
	filepath.Walk(filepath.Join(dir, "objects"), func(path string, info os.FileInfo, err error) error {
		if err == nil && !info.IsDir() {
			objects++
		}
		return nil
	})
	if objects != 1 {
		t.Errorf("object count = %d, want 1 (content-addressed dedup)", objects)
	}
	if st.Len() != 2 {
		t.Errorf("Len = %d, want 2", st.Len())
	}
}

func TestReopenAndEntriesOrder(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := map[Key]*sim.Result{}
	for _, scn := range []string{"b-scn", "a-scn"} {
		for seed := int64(2); seed >= 1; seed-- {
			res := syntheticResult(scn, 10, seed, 30, seed == 2)
			k := key(scn, 10, seed)
			if _, _, err := st.Put(scn, k, res); err != nil {
				t.Fatal(err)
			}
			want[k] = res
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if st2.Len() != len(want) {
		t.Fatalf("reopened Len = %d, want %d", st2.Len(), len(want))
	}
	for k, res := range want {
		got, ok, err := st2.Get(k)
		if err != nil || !ok {
			t.Fatalf("reopened get %+v: ok=%v err=%v", k, ok, err)
		}
		if !reflect.DeepEqual(got, res) {
			t.Errorf("reopened result differs for %+v", k)
		}
	}
	entries := st2.Entries()
	for i := 1; i < len(entries); i++ {
		a, b := entries[i-1], entries[i]
		if a.Scenario > b.Scenario || (a.Scenario == b.Scenario && a.Key.Seed > b.Key.Seed) {
			t.Errorf("Entries not sorted: %s/%d before %s/%d", a.Scenario, a.Key.Seed, b.Scenario, b.Key.Seed)
		}
	}
}

func TestTornManifestTailTolerated(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := st.Put("torn", key("torn", 10, 1), syntheticResult("torn", 10, 1, 20, false)); err != nil {
		t.Fatal(err)
	}
	st.Close()

	// A crashed appender leaves a partial final line: load must drop it
	// and keep everything before it.
	f, err := os.OpenFile(filepath.Join(dir, "manifest.jsonl"), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"key":{"fp":"abc","fpr":5,`)
	f.Close()

	st2, err := Open(dir)
	if err != nil {
		t.Fatalf("torn tail not tolerated: %v", err)
	}
	defer st2.Close()
	if st2.Len() != 1 {
		t.Errorf("Len after torn tail = %d, want 1", st2.Len())
	}

	// Corruption before the final line is a real error.
	data, _ := os.ReadFile(filepath.Join(dir, "manifest.jsonl"))
	os.WriteFile(filepath.Join(dir, "manifest.jsonl"), append([]byte("not json\n"), data...), 0o644)
	if _, err := Open(dir); err == nil {
		t.Error("corrupted interior manifest line: want error, got nil")
	}
}

func TestMissingArtifactErrorsAndSelfHeals(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	res := syntheticResult("gone", 10, 1, 20, false)
	e, _, err := st.Put("gone", key("gone", 10, 1), res)
	if err != nil {
		t.Fatal(err)
	}
	os.Remove(st.ObjectPath(e.Artifact))
	if _, ok, err := st.Get(key("gone", 10, 1)); err == nil || ok {
		t.Errorf("missing artifact: ok=%v err=%v, want error", ok, err)
	}

	// Re-archiving the identical (deterministic) result repairs the
	// object; a result that hashes differently must be rejected, not
	// silently substituted under the recorded hash.
	if _, _, err := st.Put("gone", key("gone", 10, 1), syntheticResult("gone", 10, 1, 19, false)); err == nil {
		t.Error("divergent re-put under a missing artifact: want error")
	}
	healed, created, err := st.Put("gone", key("gone", 10, 1), res)
	if err != nil || !created {
		t.Fatalf("self-heal put: created=%v err=%v", created, err)
	}
	if healed.Artifact != e.Artifact {
		t.Errorf("healed artifact %s != original %s", healed.Artifact, e.Artifact)
	}
	if got, ok, err := st.Get(key("gone", 10, 1)); err != nil || !ok {
		t.Fatalf("get after heal: ok=%v err=%v", ok, err)
	} else if !reflect.DeepEqual(got, res) {
		t.Error("healed result differs")
	}
}

// TestConcurrentRecordersAndReaders drives parallel recorders and
// readers against one manifest; run under -race this is the store's
// concurrency contract.
func TestConcurrentRecordersAndReaders(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	const writers, points = 4, 12
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < points; i++ {
				scn := fmt.Sprintf("conc-%d", i%3)
				seed := int64(w*points + i)
				res := syntheticResult(scn, 10, seed, 10, i%2 == 0)
				if _, _, err := st.Put(scn, key(scn, 10, seed), res); err != nil {
					t.Errorf("put: %v", err)
					return
				}
			}
		}(w)
	}
	// Duplicate-key recorders racing on the same points.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < points; i++ {
				res := syntheticResult("dup", 5, int64(i), 10, false)
				if _, _, err := st.Put("dup", key("dup", 5, int64(i)), res); err != nil {
					t.Errorf("dup put: %v", err)
					return
				}
			}
		}()
	}
	// Readers interleaving with the writers.
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < points*2; i++ {
				st.Len()
				st.Entries()
				if res, ok, err := st.Get(key("dup", 5, int64(i%points))); err != nil {
					t.Errorf("get: %v", err)
					return
				} else if ok && res.Trace.Len() != 10 {
					t.Errorf("got %d rows, want 10", res.Trace.Len())
					return
				}
			}
		}()
	}
	wg.Wait()

	want := writers*points + points
	if st.Len() != want {
		t.Errorf("Len = %d, want %d", st.Len(), want)
	}
	for _, e := range st.Entries() {
		if _, ok, err := st.Get(e.Key); !ok || err != nil {
			t.Errorf("entry %s/%d unreadable: ok=%v err=%v", e.Scenario, e.Key.Seed, ok, err)
		}
	}
}

func TestKeyForUsesSpecFingerprint(t *testing.T) {
	k1 := KeyFor(scenario.CutOut, 5, 1)
	k2 := KeyFor(scenario.CutOut, 5, 1)
	if k1 != k2 {
		t.Errorf("KeyFor not stable: %+v vs %+v", k1, k2)
	}
	if k1.SimVersion != sim.Version {
		t.Errorf("SimVersion = %q, want %q", k1.SimVersion, sim.Version)
	}
	sp, ok := scenario.Default().SpecOf(scenario.CutOut)
	if !ok {
		t.Fatal("cut-out has no spec")
	}
	if k1.Fingerprint != scenario.SpecFingerprint(sp) {
		t.Error("registered scenario must fingerprint by spec content")
	}
	// Any spec edit — parameters or the name, which becomes trace
	// metadata — must change the fingerprint.
	edited := sp
	edited.Duration += 1
	if scenario.SpecFingerprint(edited) == k1.Fingerprint {
		t.Error("edited spec kept its fingerprint")
	}
	renamed := sp
	renamed.Name = "cut-out-renamed"
	if scenario.SpecFingerprint(renamed) == k1.Fingerprint {
		t.Error("renamed spec kept its fingerprint")
	}
	// Unregistered scenarios fall back to a name hash, still unique
	// per name.
	if scenario.FingerprintOf("no-such-scenario") == scenario.FingerprintOf("other-missing") {
		t.Error("name-hash fallback collided")
	}
}

// TestSummarize: the manifest aggregate matches the recorded entries.
func TestSummarize(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if got := st.Summarize(); got != (Summary{}) {
		t.Errorf("empty store summary %+v", got)
	}
	res := syntheticResult("cut-out", 30, 1, 40, false)
	if _, _, err := st.Put("cut-out", key("cut-out", 30, 1), res); err != nil {
		t.Fatal(err)
	}
	res2 := syntheticResult("cut-out", 30, 2, 60, false)
	if _, _, err := st.Put("cut-out", key("cut-out", 30, 2), res2); err != nil {
		t.Fatal(err)
	}
	sum := st.Summarize()
	if sum.Entries != 2 || sum.Scenarios != 1 {
		t.Errorf("summary %+v, want 2 entries over 1 scenario", sum)
	}
	if sum.Rows != res.Trace.Len()+res2.Trace.Len() || sum.Bytes <= 0 {
		t.Errorf("summary volume %+v", sum)
	}
}

// Two Store handles over one directory model fabric replicas (separate
// processes) publishing into a shared store: a Lookup/Get miss on one
// handle must pick up entries the other handle appended after both
// were opened — the refresh-on-miss tail read — and a Put of an
// already-published point must adopt it instead of duplicating the
// manifest line.
func TestCrossHandleManifestRefresh(t *testing.T) {
	dir := t.TempDir()
	a, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	k := key("shared", 30, 1)
	res := syntheticResult("shared", 30, 1, 20, false)
	if _, _, err := a.Put("shared", k, res); err != nil {
		t.Fatal(err)
	}

	if _, ok := b.Lookup(k); !ok {
		t.Fatal("Lookup on second handle missed an entry the first handle archived")
	}
	got, ok, err := b.Get(k)
	if err != nil || !ok {
		t.Fatalf("Get on second handle = (%v, %v), want hit", ok, err)
	}
	if !reflect.DeepEqual(got.Trace.Rows, res.Trace.Rows) {
		t.Error("cross-handle Get returned different trace rows")
	}

	// Re-putting via the second handle must adopt, not append.
	if _, created, err := b.Put("shared", k, res); err != nil || created {
		t.Fatalf("cross-handle Put = (created=%v, %v), want adopt of existing entry", created, err)
	}
	lines, err := os.ReadFile(filepath.Join(dir, "manifest.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if n := len(splitNonEmptyLines(lines)); n != 1 {
		t.Errorf("manifest has %d lines after cross-handle re-put, want 1", n)
	}

	// Summaries and Entries on a fresh third handle's sibling must also
	// see later appends.
	k2 := key("shared2", 5, 2)
	if _, _, err := a.Put("shared2", k2, syntheticResult("shared2", 5, 2, 10, true)); err != nil {
		t.Fatal(err)
	}
	if sum := b.Summarize(); sum.Entries != 2 {
		t.Errorf("Summarize on second handle = %d entries, want 2", sum.Entries)
	}
	if got := len(b.Entries()); got != 2 {
		t.Errorf("Entries on second handle = %d, want 2", got)
	}
}

// splitNonEmptyLines counts manifest payload lines.
func splitNonEmptyLines(data []byte) [][]byte {
	var out [][]byte
	for _, l := range bytesSplitLines(data) {
		if len(l) > 0 {
			out = append(out, l)
		}
	}
	return out
}

// bytesSplitLines splits on '\n' without importing bytes in tests twice.
func bytesSplitLines(data []byte) [][]byte {
	var out [][]byte
	start := 0
	for i, c := range data {
		if c == '\n' {
			out = append(out, data[start:i])
			start = i + 1
		}
	}
	out = append(out, data[start:])
	return out
}
