package store

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// jsonUnmarshal aliases encoding/json for test-local parsing.
var jsonUnmarshal = json.Unmarshal

// populate records n synthetic entries and closes the store (which
// persists the sidecar index), returning the expected entries.
func populateAndClose(t *testing.T, dir string, n int) []Entry {
	t.Helper()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		res := syntheticResult("idx", 10, int64(i+1), 10+i, i%2 == 0)
		if _, _, err := st.Put("idx", key("idx", 10, int64(i+1)), res); err != nil {
			t.Fatal(err)
		}
	}
	entries := st.Entries()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	return entries
}

// TestSidecarRoundTrip: Close writes manifest.idx; a reopen adopts it
// and reconstructs the exact same index a full JSONL parse produces.
func TestSidecarRoundTrip(t *testing.T) {
	dir := t.TempDir()
	want := populateAndClose(t, dir, 5)
	if _, err := os.Stat(filepath.Join(dir, "manifest.idx")); err != nil {
		t.Fatalf("Close did not persist the sidecar index: %v", err)
	}

	viaSidecar, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if viaSidecar.loaded == 0 {
		t.Fatal("sidecar index was not adopted")
	}
	gotSidecar := viaSidecar.Entries()
	viaSidecar.Close()

	if err := os.Remove(filepath.Join(dir, "manifest.idx")); err != nil {
		t.Fatal(err)
	}
	viaParse, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	gotParse := viaParse.Entries()
	viaParse.Close()

	if !reflect.DeepEqual(gotSidecar, want) {
		t.Error("sidecar-loaded entries differ from the recorded ones")
	}
	if !reflect.DeepEqual(gotSidecar, gotParse) {
		t.Error("sidecar-loaded entries differ from a full manifest parse")
	}
}

// TestSidecarCoversPrefixThenTails: entries appended after the sidecar
// was written (another process recording into the shared store) are
// picked up by the streaming tail parse on Open.
func TestSidecarCoversPrefixThenTails(t *testing.T) {
	dir := t.TempDir()
	populateAndClose(t, dir, 3)

	// A second recorder appends past the sidecar's covered offset.
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := st.Put("idx-tail", key("idx-tail", 5, 9), syntheticResult("idx-tail", 5, 9, 15, false)); err != nil {
		t.Fatal(err)
	}
	st.Close()

	st2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if st2.Len() != 4 {
		t.Fatalf("Len = %d, want 4 (3 sidecar-covered + 1 tail)", st2.Len())
	}
	if _, ok := st2.Lookup(key("idx-tail", 5, 9)); !ok {
		t.Error("tail entry missing after sidecar-assisted open")
	}
}

// TestSidecarStaleAndCorruptFallsBack: any sidecar that does not
// verifiably describe a prefix of the manifest is ignored — garbage
// bytes, a truncated file, or a manifest whose covered content changed
// under the index.
func TestSidecarStaleAndCorruptFallsBack(t *testing.T) {
	dir := t.TempDir()
	populateAndClose(t, dir, 3)
	idxPath := filepath.Join(dir, "manifest.idx")
	manifestPath := filepath.Join(dir, "manifest.jsonl")

	open3 := func(why string) {
		st, err := Open(dir)
		if err != nil {
			t.Fatalf("%s: %v", why, err)
		}
		defer st.Close()
		if st.Len() != 3 {
			t.Errorf("%s: Len = %d, want 3", why, st.Len())
		}
	}

	idx, err := os.ReadFile(idxPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(idxPath, []byte("ZYI1 not really an index"), 0o644); err != nil {
		t.Fatal(err)
	}
	open3("garbage sidecar")

	if err := os.WriteFile(idxPath, idx[:len(idx)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	open3("truncated sidecar")

	// A manifest truncated below the covered offset must reject the
	// sidecar outright.
	if err := os.WriteFile(idxPath, idx, 0o644); err != nil {
		t.Fatal(err)
	}
	manifest, err := os.ReadFile(manifestPath)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.SplitAfter(manifest, []byte("\n"))
	if err := os.WriteFile(manifestPath, bytes.Join(lines[:2], nil), 0o644); err != nil {
		t.Fatal(err)
	}
	stTrunc, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if stTrunc.Len() != 2 {
		t.Errorf("truncated manifest: Len = %d, want 2 (sidecar must be rejected by offset)", stTrunc.Len())
	}
	stTrunc.Close()

	// Same length, different covered content: mutate the final digit of
	// the last line's recorded_unix — inside the fingerprint window —
	// and require the reparse (not the stale sidecar) to win.
	if err := os.WriteFile(idxPath, idx, 0o644); err != nil {
		t.Fatal(err)
	}
	mutated := append([]byte{}, manifest...)
	tsOff := bytes.LastIndex(mutated, []byte(`"recorded_unix":`))
	if tsOff < 0 {
		t.Fatal("test setup: recorded_unix not found")
	}
	digit := tsOff + len(`"recorded_unix":`)
	for mutated[digit+1] >= '0' && mutated[digit+1] <= '9' {
		digit++
	}
	mutated[digit] = '0' + (mutated[digit]-'0'+1)%10
	if err := os.WriteFile(manifestPath, mutated, 0o644); err != nil {
		t.Fatal(err)
	}
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	e, ok := st.Lookup(key("idx", 10, 3))
	if !ok {
		t.Fatal("last entry missing after fingerprint-mismatch reopen")
	}
	var orig Entry
	for _, we := range populatedEntries(manifest, t) {
		if we.Key == e.Key {
			orig = we
		}
	}
	if e.RecordedUnix == orig.RecordedUnix {
		t.Error("stale sidecar was trusted despite a covered-content mismatch")
	}

	// An empty sidecar alongside an empty store is a no-op.
	empty := t.TempDir()
	if err := os.WriteFile(filepath.Join(empty, "manifest.idx"), []byte("ZYI1"), 0o644); err != nil {
		t.Fatal(err)
	}
	st2, err := Open(empty)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if st2.Len() != 0 {
		t.Errorf("empty store Len = %d", st2.Len())
	}
}

// populatedEntries parses original manifest bytes for comparison.
func populatedEntries(manifest []byte, t *testing.T) []Entry {
	t.Helper()
	var out []Entry
	for _, line := range bytes.Split(manifest, []byte("\n")) {
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var e Entry
		if err := jsonUnmarshal(line, &e); err != nil {
			t.Fatal(err)
		}
		out = append(out, e)
	}
	return out
}

// TestSidecarEntryCodec fuzz-ishly round-trips entries through the
// binary sidecar codec, including the nil/non-nil map distinction.
func TestSidecarEntryCodec(t *testing.T) {
	entries := []Entry{
		{Key: Key{Fingerprint: "fp1", FPR: 7.5, Seed: -3, SimVersion: "v1"}, Scenario: "s", Artifact: "abc", Rows: 10, Bytes: 999, MinBumperGap: 1.25, RecordedUnix: 1700000000},
		{Key: Key{Fingerprint: "fp2", FPR: 30, Seed: 1, SimVersion: "v1"}, Scenario: "t", Artifact: "def", FramesProcessed: map[string]int{}, MinGapInfinite: true, EgoStopped: true},
		{Key: Key{FPR: 0.5}, FramesProcessed: map[string]int{"front120": 42, "left": 7}},
	}
	var buf bytes.Buffer
	for _, e := range entries {
		encodeSidecarEntry(&buf, e)
	}
	c := &sidecarCursor{p: buf.Bytes()}
	for i, want := range entries {
		got, ok := decodeSidecarEntry(c)
		if !ok {
			t.Fatalf("entry %d failed to decode", i)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("entry %d: %+v != %+v", i, got, want)
		}
		if (got.FramesProcessed == nil) != (want.FramesProcessed == nil) {
			t.Errorf("entry %d: nil-map identity lost", i)
		}
	}
	if c.remaining() != 0 {
		t.Errorf("%d undecoded bytes", c.remaining())
	}

	// Truncations must fail cleanly, never panic.
	for n := 0; n < buf.Len(); n += 7 {
		c := &sidecarCursor{p: buf.Bytes()[:n]}
		for j := 0; j < len(entries); j++ {
			if _, ok := decodeSidecarEntry(c); !ok {
				break
			}
		}
	}
}
