package store

import (
	"strings"
	"testing"

	"repro/internal/sim"
	"repro/internal/trace"
)

// TestPutRefusesNonFullResults pins the persistence guard: the store
// must never archive a Summary/Off-level result, or the disk tier
// would later serve a trace-less run as a hit.
func TestPutRefusesNonFullResults(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	for _, lvl := range []trace.Level{trace.LevelSummary, trace.LevelOff} {
		res := &sim.Result{
			Trace:           &trace.Trace{Meta: trace.Meta{Scenario: "s", FPR: 5, Seed: 1}},
			FramesProcessed: map[string]int{},
			Level:           lvl,
		}
		_, created, err := st.Put("s", KeyFor("s", 5, 1), res)
		if err == nil {
			t.Fatalf("%v-level result archived", lvl)
		}
		if created {
			t.Fatalf("%v-level put reported created", lvl)
		}
		if !strings.Contains(err.Error(), lvl.String()) {
			t.Errorf("error does not name the offending level: %v", err)
		}
	}
	if st.Len() != 0 {
		t.Fatalf("store has %d entries after refused puts", st.Len())
	}

	// An off-level result with a nil trace hits the nil guard the same
	// way.
	if _, _, err := st.Put("s", KeyFor("s", 5, 2), &sim.Result{Level: trace.LevelOff}); err == nil {
		t.Fatal("nil-trace result archived")
	}
}
