package store

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"
	"os"
	"sort"

	"repro/internal/trace"
)

// This file is the sidecar index: a binary cache of the parsed
// manifest so Open on a large store is one compact read instead of a
// full JSONL re-parse.
//
// Layout (manifest.idx, magic "ZYI1"):
//
//	"ZYI1"
//	uvarint coveredOffset      manifest bytes the entries describe
//	uvarint fpLen, fpLen bytes fingerprint: the manifest bytes
//	                           [coveredOffset-fpLen, coveredOffset)
//	uvarint entryCount
//	entryCount × entry         first-recorded order
//
// The sidecar is a pure cache and is trusted only when it verifiably
// describes a prefix of the manifest: coveredOffset must not exceed
// the manifest size and the fingerprint bytes must match the manifest
// content just before the covered offset. Any mismatch, decode error,
// or trailing garbage silently falls back to the streaming JSONL parse
// — a stale or corrupt index can cost a re-parse, never a wrong entry.
// Writers produce it best-effort on Store.Close via temp+fsync+rename,
// so crashed processes leave either the old index or the new one,
// never a torn file.

// sidecarMagic versions the sidecar layout; bumping it (ZYI2, ...)
// invalidates every existing index, which costs one re-parse per store.
const sidecarMagic = "ZYI1"

// sidecarFingerprint bounds how many manifest tail bytes the index
// embeds for validation.
const sidecarFingerprint = 256

// sidecarMaxSize caps how large an index file the loader will read;
// far above any real manifest (entries are ~200 bytes each).
const sidecarMaxSize = 1 << 30

// loadSidecarLocked adopts the sidecar index if it validates against
// the open manifest file: entries land in the in-memory index and
// s.loaded advances to the covered offset. On any failure it leaves
// the store untouched (the caller falls back to the full parse). The
// manifest file's read offset is restored by the caller via Seek.
func (s *Store) loadSidecarLocked(manifest *os.File) {
	data, err := os.ReadFile(s.sidecarPath())
	if err != nil || len(data) > sidecarMaxSize {
		return
	}
	covered, fp, entries, ok := decodeSidecar(data)
	if !ok {
		return
	}
	fi, err := manifest.Stat()
	if err != nil || fi.Size() < covered || int64(len(fp)) > covered {
		return
	}
	if len(fp) > 0 {
		got := make([]byte, len(fp))
		if _, err := manifest.ReadAt(got, covered-int64(len(fp))); err != nil || !bytes.Equal(got, fp) {
			return
		}
	}
	for _, e := range entries {
		s.addLocked(e)
	}
	s.loaded = covered
}

// writeSidecarLocked persists the current index as the sidecar,
// best-effort: failures leave the previous sidecar (or none) in place
// and the manifest remains the source of truth.
func (s *Store) writeSidecarLocked() {
	if s.loaded == 0 || len(s.order) == 0 {
		return
	}
	fpLen := int64(sidecarFingerprint)
	if s.loaded < fpLen {
		fpLen = s.loaded
	}
	fp := make([]byte, fpLen)
	mf, err := os.Open(s.manifestPath())
	if err != nil {
		return
	}
	if _, err := mf.ReadAt(fp, s.loaded-fpLen); err != nil {
		mf.Close()
		return
	}
	mf.Close()

	var buf bytes.Buffer
	buf.WriteString(sidecarMagic)
	putUvarint(&buf, uint64(s.loaded))
	putUvarint(&buf, uint64(len(fp)))
	buf.Write(fp)
	putUvarint(&buf, uint64(len(s.order)))
	for _, k := range s.order {
		encodeSidecarEntry(&buf, s.index[k])
	}

	tmp, err := os.CreateTemp(s.dir, ".idx-*")
	if err != nil {
		return
	}
	defer os.Remove(tmp.Name())
	_, err = tmp.Write(buf.Bytes())
	if err == nil {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return
	}
	_ = os.Rename(tmp.Name(), s.sidecarPath())
}

func putUvarint(buf *bytes.Buffer, v uint64) {
	var tmp [binary.MaxVarintLen64]byte
	buf.Write(tmp[:binary.PutUvarint(tmp[:], v)])
}

func putSvarint(buf *bytes.Buffer, v int64) {
	var tmp [binary.MaxVarintLen64]byte
	buf.Write(tmp[:binary.PutVarint(tmp[:], v)])
}

func putF64(buf *bytes.Buffer, v float64) {
	var tmp [8]byte
	binary.LittleEndian.PutUint64(tmp[:], math.Float64bits(v))
	buf.Write(tmp[:])
}

func putStr(buf *bytes.Buffer, s string) {
	putUvarint(buf, uint64(len(s)))
	buf.WriteString(s)
}

func encodeSidecarEntry(buf *bytes.Buffer, e Entry) {
	putStr(buf, e.Key.Fingerprint)
	putF64(buf, e.Key.FPR)
	putSvarint(buf, e.Key.Seed)
	putStr(buf, e.Key.SimVersion)
	putStr(buf, e.Scenario)
	putStr(buf, e.Artifact)
	putUvarint(buf, uint64(e.Rows))
	putSvarint(buf, e.Bytes)
	if e.Collision != nil {
		buf.WriteByte(1)
		putF64(buf, e.Collision.Time)
		putStr(buf, e.Collision.ActorID)
	} else {
		buf.WriteByte(0)
	}
	// nil/non-nil maps are preserved (0 = nil, n+1 = n cameras) so a
	// sidecar-loaded Entry is deep-equal to its JSONL-parsed twin.
	if e.FramesProcessed == nil {
		putUvarint(buf, 0)
	} else {
		putUvarint(buf, uint64(len(e.FramesProcessed))+1)
		cams := make([]string, 0, len(e.FramesProcessed))
		for cam := range e.FramesProcessed {
			cams = append(cams, cam)
		}
		sort.Strings(cams)
		for _, cam := range cams {
			putStr(buf, cam)
			putSvarint(buf, int64(e.FramesProcessed[cam]))
		}
	}
	putF64(buf, e.MinBumperGap)
	var flags byte
	if e.MinGapInfinite {
		flags |= 1
	}
	if e.EgoStopped {
		flags |= 2
	}
	buf.WriteByte(flags)
	putSvarint(buf, e.RecordedUnix)
}

// sidecarCursor is a bounds-checked reader over the sidecar bytes; any
// overrun or malformed varint poisons it and the load is abandoned.
type sidecarCursor struct {
	p   []byte
	off int
	bad bool
}

func (c *sidecarCursor) remaining() int { return len(c.p) - c.off }

func (c *sidecarCursor) uvarint() uint64 {
	v, n := binary.Uvarint(c.p[c.off:])
	if n <= 0 {
		c.bad = true
		return 0
	}
	c.off += n
	return v
}

func (c *sidecarCursor) svarint() int64 {
	v, n := binary.Varint(c.p[c.off:])
	if n <= 0 {
		c.bad = true
		return 0
	}
	c.off += n
	return v
}

func (c *sidecarCursor) f64() float64 {
	if c.remaining() < 8 {
		c.bad = true
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(c.p[c.off:]))
	c.off += 8
	return v
}

func (c *sidecarCursor) byte() byte {
	if c.remaining() < 1 {
		c.bad = true
		return 0
	}
	b := c.p[c.off]
	c.off++
	return b
}

func (c *sidecarCursor) str() string {
	n := c.uvarint()
	if c.bad || n > uint64(c.remaining()) {
		c.bad = true
		return ""
	}
	s := string(c.p[c.off : c.off+int(n)])
	c.off += int(n)
	return s
}

func decodeSidecar(data []byte) (covered int64, fp []byte, entries []Entry, ok bool) {
	if len(data) < len(sidecarMagic) || string(data[:len(sidecarMagic)]) != sidecarMagic {
		return 0, nil, nil, false
	}
	c := &sidecarCursor{p: data, off: len(sidecarMagic)}
	cov := c.uvarint()
	fpLen := c.uvarint()
	if c.bad || cov > math.MaxInt64 || fpLen > sidecarFingerprint || fpLen > uint64(c.remaining()) {
		return 0, nil, nil, false
	}
	fp = data[c.off : c.off+int(fpLen)]
	c.off += int(fpLen)
	n := c.uvarint()
	// Each entry costs well over 16 bytes on the wire; reject counts the
	// payload cannot possibly hold before allocating.
	if c.bad || n > uint64(c.remaining()/16+1) {
		return 0, nil, nil, false
	}
	entries = make([]Entry, 0, n)
	for i := uint64(0); i < n; i++ {
		e, ok := decodeSidecarEntry(c)
		if !ok {
			return 0, nil, nil, false
		}
		entries = append(entries, e)
	}
	if c.bad || c.remaining() != 0 {
		return 0, nil, nil, false
	}
	return int64(cov), fp, entries, true
}

func decodeSidecarEntry(c *sidecarCursor) (Entry, bool) {
	var e Entry
	e.Key.Fingerprint = c.str()
	e.Key.FPR = c.f64()
	e.Key.Seed = c.svarint()
	e.Key.SimVersion = c.str()
	e.Scenario = c.str()
	e.Artifact = c.str()
	e.Rows = int(c.uvarint())
	e.Bytes = c.svarint()
	if c.byte() == 1 {
		col := &trace.Collision{}
		col.Time = c.f64()
		col.ActorID = c.str()
		e.Collision = col
	}
	nCams := c.uvarint()
	if nCams > 0 {
		// Each camera costs ≥2 wire bytes; a count the remaining payload
		// cannot hold is hostile — reject before the map allocation.
		if nCams-1 > uint64(c.remaining()) {
			c.bad = true
			return Entry{}, false
		}
		m := make(map[string]int, nCams-1)
		for i := uint64(1); i < nCams; i++ {
			cam := c.str()
			m[cam] = int(c.svarint())
		}
		e.FramesProcessed = m
	}
	e.MinBumperGap = c.f64()
	flags := c.byte()
	e.MinGapInfinite = flags&1 != 0
	e.EgoStopped = flags&2 != 0
	e.RecordedUnix = c.svarint()
	if c.bad {
		return Entry{}, false
	}
	return e, true
}

// RebuildSidecar forces a fresh sidecar index write for the store's
// current in-memory view — used by tooling (migrate) so the next Open
// is fast without waiting for a clean Close.
func (s *Store) RebuildSidecar() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.refreshLocked(true)
	s.writeSidecarLocked()
	if _, err := os.Stat(s.sidecarPath()); err != nil {
		return fmt.Errorf("store: sidecar rebuild failed: %w", err)
	}
	return nil
}
