package store

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/trace"
)

// countObjects tallies on-disk objects by extension.
func countObjects(t *testing.T, dir string) (zyt, jsonl int) {
	t.Helper()
	filepath.Walk(filepath.Join(dir, "objects"), func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() {
			return nil
		}
		switch {
		case strings.HasSuffix(path, extZYT):
			zyt++
		case strings.HasSuffix(path, extJSONL):
			jsonl++
		}
		return nil
	})
	return zyt, jsonl
}

// TestPropertyFormatsEveryScenarioEveryLevel is the cross-format
// equivalence property over the real simulator: for every registered
// scenario and every archivable recording level, the gzip-JSONL round
// trip and the ZYT1 round trip reconstruct deep-equal sim.Results.
// LevelOff produces no trace at all and is asserted as such.
func TestPropertyFormatsEveryScenarioEveryLevel(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every registered scenario through the simulator")
	}
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	for _, sc := range scenario.Default().List() {
		for _, level := range []trace.Level{trace.LevelFull, trace.LevelSummary, trace.LevelOff} {
			cfg := sc.Build(10, 1)
			cfg.Record = level
			res, err := sim.Run(cfg)
			if err != nil {
				t.Fatalf("%s/%s: %v", sc.Name, level, err)
			}
			if level == trace.LevelOff {
				if res.Trace != nil {
					t.Errorf("%s: LevelOff produced a trace", sc.Name)
				}
				continue
			}
			// Trace-layer equivalence at every recorded level.
			viaJSON := jsonlRoundTripTrace(t, res.Trace)
			viaZYT := zytRoundTripTrace(t, res.Trace)
			if !reflect.DeepEqual(viaZYT, viaJSON) {
				t.Errorf("%s/%s: ZYT and JSONL round trips disagree", sc.Name, level)
			}
			if level != trace.LevelFull {
				continue
			}
			// Store-layer equivalence: archive (written as .zyt), read
			// back, then migrate the object to legacy gzip JSONL and read
			// again — all three views must be deep-equal.
			k := KeyForScenario(sc, 10, 1)
			if _, _, err := st.Put(sc.Name, k, res); err != nil {
				t.Fatalf("%s: put: %v", sc.Name, err)
			}
			got, ok, err := st.Get(k)
			if err != nil || !ok {
				t.Fatalf("%s: get: ok=%v err=%v", sc.Name, ok, err)
			}
			if !reflect.DeepEqual(got, res) {
				t.Errorf("%s: ZYT-archived result differs from fresh simulation", sc.Name)
			}
		}
	}

	// Flip the whole store to the legacy format and require identical
	// reconstructions through the gzip-JSONL decoder.
	fresh := map[Key]*sim.Result{}
	for _, sc := range scenario.Default().List() {
		res, err := sim.Run(sc.Build(10, 1))
		if err != nil {
			t.Fatal(err)
		}
		fresh[KeyForScenario(sc, 10, 1)] = res
	}
	if _, err := st.Migrate(FormatJSONL); err != nil {
		t.Fatalf("migrate to jsonl: %v", err)
	}
	for k, res := range fresh {
		got, ok, err := st.Get(k)
		if err != nil || !ok {
			t.Fatalf("post-migrate get: ok=%v err=%v", ok, err)
		}
		if !reflect.DeepEqual(got, res) {
			t.Errorf("JSONL-migrated result differs from fresh simulation for %+v", k)
		}
	}
}

// jsonlRoundTripTrace / zytRoundTripTrace mirror the trace package's
// white-box helpers for use from the store's tests.
func jsonlRoundTripTrace(t *testing.T, tr *trace.Trace) *trace.Trace {
	t.Helper()
	var buf strings.Builder
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := trace.Read(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	return got
}

func zytRoundTripTrace(t *testing.T, tr *trace.Trace) *trace.Trace {
	t.Helper()
	var buf strings.Builder
	if err := tr.WriteZYT(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := trace.ReadZYT(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	return got
}

// TestMigrateMixedFormatStore drives the full migration workflow: a
// store recorded in the current format, migrated to legacy, extended
// with new recordings (mixed formats on disk), read transparently, and
// migrated back.
func TestMigrateMixedFormatStore(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	want := map[Key]*sim.Result{}
	put := func(scn string, seed int64, rows int) {
		res := syntheticResult(scn, 10, seed, rows, seed%2 == 0)
		k := key(scn, 10, seed)
		if _, _, err := st.Put(scn, k, res); err != nil {
			t.Fatal(err)
		}
		want[k] = res
	}
	put("mixed-a", 1, 30)
	put("mixed-a", 2, 40)
	put("mixed-b", 3, 25)

	if z, j := countObjects(t, dir); z != 3 || j != 0 {
		t.Fatalf("fresh store objects: %d zyt, %d jsonl; want 3, 0", z, j)
	}
	stats, err := st.Migrate(FormatJSONL)
	if err != nil {
		t.Fatalf("migrate to jsonl: %v", err)
	}
	if stats.Rewritten != 3 || stats.Skipped != 0 {
		t.Errorf("migrate stats %+v, want 3 rewritten", stats)
	}
	if z, j := countObjects(t, dir); z != 0 || j != 3 {
		t.Fatalf("post-migrate objects: %d zyt, %d jsonl; want 0, 3", z, j)
	}

	// New recordings land in the current format → a mixed store.
	put("mixed-c", 4, 20)
	if z, j := countObjects(t, dir); z != 1 || j != 3 {
		t.Fatalf("mixed objects: %d zyt, %d jsonl; want 1, 3", z, j)
	}
	for k, res := range want {
		got, ok, err := st.Get(k)
		if err != nil || !ok {
			t.Fatalf("mixed get %+v: ok=%v err=%v", k, ok, err)
		}
		if !reflect.DeepEqual(got, res) {
			t.Errorf("mixed-format Get differs for %+v", k)
		}
	}

	// Migrate everything forward; re-running is an idempotent no-op.
	stats, err = st.Migrate(FormatZYT)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Rewritten != 3 || stats.Skipped != 1 {
		t.Errorf("forward migrate stats %+v, want 3 rewritten / 1 skipped", stats)
	}
	stats, err = st.Migrate(FormatZYT)
	if err != nil || stats.Rewritten != 0 || stats.Skipped != 4 {
		t.Errorf("idempotent migrate stats %+v err=%v, want 0 rewritten / 4 skipped", stats, err)
	}
	for k, res := range want {
		got, ok, err := st.Get(k)
		if err != nil || !ok {
			t.Fatalf("post-migrate get %+v: ok=%v err=%v", k, ok, err)
		}
		if !reflect.DeepEqual(got, res) {
			t.Errorf("post-migrate Get differs for %+v", k)
		}
	}
}

// TestMigrateRefusesCorruptObject: a truncated object must survive a
// migration attempt untouched — the error is reported and the bad copy
// is not replaced by garbage, nor deleted.
func TestMigrateRefusesCorruptObject(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	res := syntheticResult("corrupt", 10, 1, 30, false)
	e, _, err := st.Put("corrupt", key("corrupt", 10, 1), res)
	if err != nil {
		t.Fatal(err)
	}
	path := st.ObjectPath(e.Artifact)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	stats, err := st.Migrate(FormatJSONL)
	if err == nil {
		t.Fatal("migrating a corrupt object: want error")
	}
	if stats.Rewritten != 0 {
		t.Errorf("corrupt object was rewritten: %+v", stats)
	}
	if _, statErr := os.Stat(path); statErr != nil {
		t.Error("corrupt source object was deleted")
	}
}

// TestParseFormat pins the accepted spellings.
func TestParseFormat(t *testing.T) {
	for in, want := range map[string]Format{
		"zyt": FormatZYT, ".zyt": FormatZYT,
		"jsonl": FormatJSONL, "jsonl.gz": FormatJSONL, ".jsonl.gz": FormatJSONL,
		"ZYT": FormatZYT,
	} {
		got, err := ParseFormat(in)
		if err != nil || got != want {
			t.Errorf("ParseFormat(%q) = (%v, %v), want %v", in, got, err, want)
		}
	}
	if _, err := ParseFormat("parquet"); err == nil {
		t.Error("ParseFormat accepted an unknown format")
	}
}

// TestLookupMissDebounce pins the satellite fix: within the refresh
// window a miss does not touch the filesystem, while Put always forces
// a refresh so cross-process idempotence never trades on the debounce.
func TestLookupMissDebounce(t *testing.T) {
	dir := t.TempDir()
	a, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	b.mu.Lock()
	b.refreshEvery = time.Hour
	b.mu.Unlock()

	k := key("debounce", 10, 1)
	if _, ok := b.Lookup(k); ok {
		t.Fatal("unexpected hit")
	} // arms the debounce window
	res := syntheticResult("debounce", 10, 1, 20, false)
	if _, _, err := a.Put("debounce", k, res); err != nil {
		t.Fatal(err)
	}
	if _, ok := b.Lookup(k); ok {
		t.Fatal("debounced miss refreshed anyway")
	}
	// Put on the debounced handle must still adopt the published entry
	// rather than appending a duplicate manifest line.
	if _, created, err := b.Put("debounce", k, res); err != nil || created {
		t.Fatalf("debounced Put = (created=%v, %v), want adoption", created, err)
	}
	// Dropping the window lets the miss path see the entry.
	b.mu.Lock()
	b.refreshEvery = 0
	b.mu.Unlock()
	if _, ok := b.Lookup(k); !ok {
		t.Fatal("lookup after window expiry still missed")
	}
}
