package store

import (
	"compress/gzip"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/trace"
)

// Format names an on-disk object encoding for Migrate.
type Format string

// The two object encodings a store can hold.
const (
	// FormatZYT is the current binary columnar encoding (.zyt).
	FormatZYT Format = "zyt"
	// FormatJSONL is the legacy gzip JSONL encoding (.jsonl.gz).
	FormatJSONL Format = "jsonl"
)

// ParseFormat maps a user-facing format name to a Format.
func ParseFormat(name string) (Format, error) {
	switch strings.ToLower(name) {
	case string(FormatZYT), extZYT:
		return FormatZYT, nil
	case string(FormatJSONL), "jsonl.gz", extJSONL:
		return FormatJSONL, nil
	}
	return "", fmt.Errorf("store: unknown object format %q (want %q or %q)", name, FormatZYT, FormatJSONL)
}

func (f Format) ext() string {
	if f == FormatJSONL {
		return extJSONL
	}
	return extZYT
}

// MigrateStats reports what one Migrate pass did.
type MigrateStats struct {
	Scanned   int   `json:"scanned"`   // objects examined
	Rewritten int   `json:"rewritten"` // objects converted to the target format
	Skipped   int   `json:"skipped"`   // objects already in the target format
	BytesIn   int64 `json:"bytes_in"`  // on-disk size of converted source objects
	BytesOut  int64 `json:"bytes_out"` // on-disk size of their replacements
}

// Migrate rewrites every object in the store to the target format, in
// place: each source object is decoded, re-encoded to a temp file,
// fsynced, verified to hash back to its content address, renamed over
// the target path, and only then is the source removed. A crash at any
// point leaves each artifact readable in at least one format (readers
// probe both), and a decode or hash mismatch skips the object with an
// error rather than destroying the only good copy. Migrate walks the
// objects directory rather than the manifest, so shared and orphaned
// objects convert too; manifest entries are untouched (content
// addresses are format-independent).
func (s *Store) Migrate(target Format) (MigrateStats, error) {
	var st MigrateStats
	root := filepath.Join(s.dir, "objects")
	var firstErr error
	err := filepath.Walk(root, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() {
			return err
		}
		name := info.Name()
		var hash string
		var from Format
		switch {
		case strings.HasSuffix(name, extZYT):
			hash, from = strings.TrimSuffix(name, extZYT), FormatZYT
		case strings.HasSuffix(name, extJSONL):
			hash, from = strings.TrimSuffix(name, extJSONL), FormatJSONL
		default:
			return nil // temp debris or foreign files
		}
		st.Scanned++
		if from == target {
			st.Skipped++
			return nil
		}
		out, err := s.convertObject(path, hash, from, target)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			return nil // keep converting the rest
		}
		st.Rewritten++
		st.BytesIn += info.Size()
		st.BytesOut += out
		return nil
	})
	if err != nil {
		return st, fmt.Errorf("store: migrate: %w", err)
	}
	return st, firstErr
}

// convertObject rewrites one artifact to the target format and removes
// the source, returning the new object's on-disk size.
func (s *Store) convertObject(srcPath, hash string, from, target Format) (int64, error) {
	tr, err := readObjectFile(srcPath, from)
	if err != nil {
		return 0, fmt.Errorf("store: migrate %s: %w", hash, err)
	}
	// The content address is the SHA-256 of the canonical JSONL
	// serialization; verify before touching anything so a bit-rotted
	// source or an encoder bug never installs a mislabeled object.
	var canon strings.Builder
	if err := tr.Write(&canon); err != nil {
		return 0, fmt.Errorf("store: migrate %s: %w", hash, err)
	}
	sum := sha256.Sum256([]byte(canon.String()))
	if got := hex.EncodeToString(sum[:]); got != hash {
		return 0, fmt.Errorf("store: migrate %s: decoded object hashes to %s — refusing to rewrite", hash, got)
	}

	dst := s.objectPathExt(hash, target.ext())
	tmp, err := os.CreateTemp(filepath.Dir(dst), ".tmp-"+hash+"-*")
	if err != nil {
		return 0, fmt.Errorf("store: migrate %s: %w", hash, err)
	}
	defer os.Remove(tmp.Name())
	switch target {
	case FormatJSONL:
		zw, _ := gzip.NewWriterLevel(tmp, gzip.BestSpeed)
		if err = tr.Write(zw); err == nil {
			err = zw.Close()
		} else {
			zw.Close()
		}
	default:
		err = tr.WriteZYT(tmp)
	}
	if err == nil {
		err = tmp.Sync()
	}
	var size int64
	if err == nil {
		if fi, serr := tmp.Stat(); serr == nil {
			size = fi.Size()
		}
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return 0, fmt.Errorf("store: migrate %s: %w", hash, err)
	}
	if err := os.Rename(tmp.Name(), dst); err != nil {
		return 0, fmt.Errorf("store: migrate %s: %w", hash, err)
	}
	if err := os.Remove(srcPath); err != nil && !os.IsNotExist(err) {
		return size, fmt.Errorf("store: migrate %s: source cleanup: %w", hash, err)
	}
	return size, nil
}

// readObjectFile decodes one object file in the given format.
func readObjectFile(path string, f Format) (*trace.Trace, error) {
	file, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer file.Close()
	if f == FormatJSONL {
		zr, err := gzip.NewReader(file)
		if err != nil {
			return nil, err
		}
		defer zr.Close()
		return trace.Read(zr)
	}
	return trace.ReadZYT(file)
}
