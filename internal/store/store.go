// Package store is the persistent campaign store: a content-addressed
// on-disk archive of simulation runs. The paper's pre-deployment flow
// is built on collected scenario traces (§3.1); this package makes the
// repo's traces durable artifacts instead of process-lifetime cache
// entries, so corpora generated once are replayed — not re-simulated —
// by every later process (warm-started Table-1 sweeps, the
// differential replay harness in internal/replay, CI regression jobs).
//
// # Layout
//
// A store is a directory:
//
//	<dir>/manifest.jsonl           append-only index, one JSON entry per line
//	<dir>/manifest.idx             binary sidecar index (rebuilt if stale)
//	<dir>/objects/<aa>/<hash>.zyt        binary columnar trace artifacts
//	<dir>/objects/<aa>/<hash>.jsonl.gz   legacy gzip JSONL trace artifacts
//
// Artifacts are content-addressed: <hash> is the SHA-256 of the
// canonical trace serialization (trace.Trace.Write — the JSONL bytes,
// regardless of which format is on disk), and <aa> its first two hex
// digits. Content addressing over the canonical serialization means a
// store migrated between formats keeps every hash, manifest entry, and
// cross-key dedup link intact. New objects are written in the ZYT1
// binary columnar format (trace.WriteZYT, stored raw — its decoder is
// what makes the disk tier faster than re-simulating); old gzip-JSONL
// objects stay readable forever, and Migrate rewrites between the two
// in place. The manifest maps a Key — scenario spec fingerprint, FPR,
// seed, simulator version — to its artifact hash plus the run summary
// needed to reconstruct a sim.Result without re-simulating (collision,
// frames processed, min bumper gap, ego stopped). manifest.idx caches
// the parsed manifest so reopening a large store skips the JSONL
// re-parse; it is validated by byte offset + content fingerprint and
// silently rebuilt whenever it does not exactly describe a prefix of
// the manifest.
//
// Keying on the spec fingerprint rather than the scenario name means a
// renamed scenario keeps its artifacts while any parameter edit — or a
// simulator semantics bump (sim.Version) — cleanly misses, never
// serving a trace recorded under different dynamics.
//
// A Store is safe for concurrent use; manifest appends are
// single-writes of one line, so concurrent recorder processes
// interleave without tearing entries (a torn final line from a crashed
// writer is tolerated and dropped on load).
package store

import (
	"bufio"
	"bytes"
	"compress/gzip"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Key identifies one archived run: the scenario's content fingerprint
// (scenario.FingerprintOf), the uniform frame processing rate, the
// noise seed, and the simulator version the trace was recorded under.
type Key struct {
	Fingerprint string  `json:"fp"`
	FPR         float64 `json:"fpr"`
	Seed        int64   `json:"seed"`
	SimVersion  string  `json:"sim"`
}

// KeyFor builds the store key of a (scenario, FPR, seed) point under
// the current simulator version, fingerprinting the scenario through
// the default registry.
func KeyFor(scenarioName string, fpr float64, seed int64) Key {
	return Key{
		Fingerprint: scenario.FingerprintOf(scenarioName),
		FPR:         fpr,
		Seed:        seed,
		SimVersion:  sim.Version,
	}
}

// KeyForScenario is KeyFor with the scenario value in hand: it prefers
// the scenario's own spec fingerprint, which exists even for
// unregistered spec-backed scenarios (generated corpus members), so
// their archived runs are content-addressed too — a generator change
// that alters a member's parameters misses cleanly instead of hitting
// a stale trace recorded under the same name.
func KeyForScenario(sc scenario.Scenario, fpr float64, seed int64) Key {
	if sc.Fingerprint == "" {
		return KeyFor(sc.Name, fpr, seed)
	}
	return Key{Fingerprint: sc.Fingerprint, FPR: fpr, Seed: seed, SimVersion: sim.Version}
}

// Entry is one manifest record: a key, its artifact, and the run
// summary that together with the trace reconstructs the sim.Result.
type Entry struct {
	Key      Key    `json:"key"`
	Scenario string `json:"scenario"` // registration name at record time
	Artifact string `json:"artifact"` // SHA-256 of the uncompressed trace JSONL
	Rows     int    `json:"rows"`
	Bytes    int64  `json:"bytes"` // uncompressed artifact size

	Collision       *trace.Collision `json:"collision,omitempty"`
	FramesProcessed map[string]int   `json:"frames_processed"`
	// MinBumperGap mirrors sim.Result.MinBumperGap; +Inf (no in-corridor
	// approach) is not representable in JSON, so it is flagged instead.
	MinBumperGap   float64 `json:"min_bumper_gap"`
	MinGapInfinite bool    `json:"min_gap_infinite,omitempty"`
	EgoStopped     bool    `json:"ego_stopped,omitempty"`

	RecordedUnix int64 `json:"recorded_unix"`
}

// Store is an open campaign store. Construct with Open.
type Store struct {
	dir string

	mu       sync.Mutex
	index    map[Key]Entry
	order    []Key // first-recorded order, deduplicated
	manifest *os.File
	// loaded is the manifest byte offset up to which the index has been
	// ingested — the high-water mark of refreshLocked's incremental
	// tail reads. Bytes past it are lines appended by other processes
	// sharing the directory (fabric replicas) that this process has not
	// indexed yet, plus this process's own appends (re-ingesting those
	// is an idempotent no-op).
	loaded int64

	// refreshEvery rate-limits the Lookup miss path's manifest stat: a
	// hot loop probing cold keys otherwise turns every miss into a
	// filesystem round trip. Put / Summarize / Entries force a refresh
	// regardless — correctness paths never trade on the debounce.
	refreshEvery time.Duration
	lastRefresh  time.Time
	// statSize/statMtime memoize the manifest stat at the last tail
	// read, so an unchanged manifest — including one pinned above
	// `loaded` forever by a crashed writer's torn tail — is never
	// reopened and re-read per miss.
	statSize  int64
	statMtime time.Time
}

// defaultRefreshEvery bounds miss-path manifest stats to ~100/s; small
// enough that fabric replicas still discover each other's appends
// within one scheduling quantum.
const defaultRefreshEvery = 10 * time.Millisecond

// Open opens (creating if needed) the store rooted at dir and loads
// its manifest index into memory.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(filepath.Join(dir, "objects"), 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{dir: dir, index: make(map[Key]Entry), refreshEvery: defaultRefreshEvery}
	if err := s.loadManifest(); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(s.manifestPath(), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s.manifest = f
	return s, nil
}

// Close persists the sidecar index (best-effort — the manifest remains
// the source of truth) and releases the manifest handle. Reads of
// already-loaded entries keep working; Put fails after Close.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.manifest == nil {
		return nil
	}
	s.writeSidecarLocked()
	err := s.manifest.Close()
	s.manifest = nil
	return err
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

func (s *Store) manifestPath() string { return filepath.Join(s.dir, "manifest.jsonl") }

func (s *Store) sidecarPath() string { return filepath.Join(s.dir, "manifest.idx") }

// Object format extensions: extZYT is the current binary columnar
// format; extJSONL is the legacy gzip-JSONL format, readable forever.
const (
	extZYT   = ".zyt"
	extJSONL = ".jsonl.gz"
)

func (s *Store) objectPathExt(hash, ext string) string {
	prefix := "00"
	if len(hash) >= 2 {
		prefix = hash[:2]
	}
	return filepath.Join(s.dir, "objects", prefix, hash+ext)
}

// ObjectPath returns the on-disk path an artifact hash is written to
// by the current format (binary columnar, .zyt). A store that predates
// the binary format may hold the hash at LegacyObjectPath instead;
// readers probe both.
func (s *Store) ObjectPath(hash string) string { return s.objectPathExt(hash, extZYT) }

// LegacyObjectPath returns the gzip-JSONL path artifact hashes were
// written to before the binary format existed.
func (s *Store) LegacyObjectPath(hash string) string { return s.objectPathExt(hash, extJSONL) }

// locateObject finds an artifact in whichever format it is stored,
// preferring the binary format when both exist (e.g. mid-migration).
func (s *Store) locateObject(hash string) (path string, legacy bool, err error) {
	p := s.ObjectPath(hash)
	if _, err := os.Stat(p); err == nil {
		return p, false, nil
	}
	p = s.LegacyObjectPath(hash)
	if _, err := os.Stat(p); err == nil {
		return p, true, nil
	}
	return "", false, fmt.Errorf("store: artifact %s: %w", hash, os.ErrNotExist)
}

// loadManifest populates the index at Open: the sidecar index is
// adopted when it verifiably describes a prefix of the manifest (one
// binary read instead of a JSONL re-parse), then the manifest is
// streamed line-by-line from the first uncovered byte — never slurped
// whole, so opening a large store doesn't spike memory.
func (s *Store) loadManifest() error {
	f, err := os.Open(s.manifestPath())
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer f.Close()
	s.loadSidecarLocked(f)
	if s.loaded > 0 {
		if _, err := f.Seek(s.loaded, io.SeekStart); err != nil {
			return fmt.Errorf("store: %w", err)
		}
	}
	return s.ingestReaderLocked(f)
}

// ingestReaderLocked parses manifest lines starting at offset s.loaded
// and advances the offset past every line it consumed. Only
// newline-terminated lines are consumed: a torn final line — the
// signature of a crashed or mid-write appender — is left unconsumed
// (not an error), so a later refresh re-reads it once its writer
// finishes. A complete line that fails to parse is tolerated only in
// final position (crashed-writer debris another process appended
// after); corruption anywhere else is a real error.
func (s *Store) ingestReaderLocked(r io.Reader) error {
	br := bufio.NewReaderSize(r, 256<<10)
	var (
		badErr error // parse failure pending the is-it-final check
		badEnd int64 // offset just past the unparseable line
	)
	for {
		line, err := br.ReadBytes('\n')
		if err != nil {
			// EOF: an unterminated fragment in line is a torn tail — leave
			// it unconsumed. An unparseable complete line right before it
			// was in final position: consume and tolerate it so refreshes
			// don't re-parse the debris forever.
			if badErr != nil {
				s.loaded = badEnd
			}
			if err == io.EOF {
				return nil
			}
			return fmt.Errorf("store: %w", err)
		}
		if badErr != nil {
			return fmt.Errorf("store: manifest offset %d: %w", s.loaded, badErr)
		}
		next := s.loaded + int64(len(line))
		if len(bytes.TrimSpace(line)) == 0 {
			s.loaded = next
			continue
		}
		var e Entry
		if err := json.Unmarshal(line, &e); err != nil {
			badErr, badEnd = err, next
			continue
		}
		s.addLocked(e)
		s.loaded = next
	}
}

// refreshLocked ingests manifest lines appended since the last load —
// by concurrent recorder processes sharing the directory (the
// distributed fabric's replicas all publish into one store) — so a
// lookup that misses the in-memory index retries against the
// up-to-date manifest before the caller re-simulates. The common case
// is one Stat, and even that is debounced on the miss path (force ==
// false): within refreshEvery of the previous attempt the refresh is
// skipped outright, and an unchanged size+mtime skips the reopen/read,
// so a hot loop probing cold keys — or a manifest pinned above
// `loaded` by a torn tail — costs ~zero filesystem work per miss.
// Refresh failures degrade to "no new entries": the miss stands and
// the caller simulates, which is always safe.
func (s *Store) refreshLocked(force bool) {
	now := time.Now()
	if !force && now.Sub(s.lastRefresh) < s.refreshEvery {
		return
	}
	s.lastRefresh = now
	fi, err := os.Stat(s.manifestPath())
	if err != nil {
		return
	}
	if fi.Size() == s.statSize && fi.ModTime().Equal(s.statMtime) {
		return
	}
	s.statSize, s.statMtime = fi.Size(), fi.ModTime()
	if fi.Size() <= s.loaded {
		return
	}
	f, err := os.Open(s.manifestPath())
	if err != nil {
		return
	}
	defer f.Close()
	if _, err := f.Seek(s.loaded, io.SeekStart); err != nil {
		return
	}
	_ = s.ingestReaderLocked(f)
}

// addLocked inserts an entry into the in-memory index; later manifest
// lines for the same key win (re-records supersede).
func (s *Store) addLocked(e Entry) {
	if _, ok := s.index[e.Key]; !ok {
		s.order = append(s.order, e.Key)
	}
	s.index[e.Key] = e
}

// Len reports the number of distinct keys in the store.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.index)
}

// Summary aggregates the manifest index: distinct archived keys, the
// scenarios they span, and total row/byte volume (uncompressed). It
// reads only the in-memory index — no artifact is touched — so it is
// cheap enough to serve on every stats request.
type Summary struct {
	Entries   int   `json:"entries"`   // distinct archived (fingerprint, FPR, seed, sim) keys
	Scenarios int   `json:"scenarios"` // distinct scenario names at record time
	Rows      int   `json:"rows"`      // total trace rows across entries
	Bytes     int64 `json:"bytes"`     // total uncompressed artifact bytes across entries
}

// Summarize computes the store's manifest Summary, refreshing the
// index from the manifest tail first so concurrent recorders' entries
// are counted.
func (s *Store) Summarize() Summary {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.refreshLocked(true)
	sum := Summary{Entries: len(s.index)}
	names := make(map[string]struct{})
	for _, e := range s.index {
		names[e.Scenario] = struct{}{}
		sum.Rows += e.Rows
		sum.Bytes += e.Bytes
	}
	sum.Scenarios = len(names)
	return sum
}

// Lookup returns the manifest entry for a key without touching the
// artifact. A miss against the in-memory index re-reads the manifest
// tail first (refreshLocked), so entries recorded by concurrent
// processes sharing the directory — fabric replicas publishing into
// one store — are found without reopening the store.
func (s *Store) Lookup(k Key) (Entry, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.index[k]
	if !ok {
		s.refreshLocked(false)
		e, ok = s.index[k]
	}
	return e, ok
}

// Entries returns every manifest entry sorted by (scenario, FPR, seed,
// sim version) — a stable order for reports and baselines. Like
// Lookup, it refreshes from the manifest tail first.
func (s *Store) Entries() []Entry {
	s.mu.Lock()
	s.refreshLocked(true)
	out := make([]Entry, 0, len(s.index))
	for _, k := range s.order {
		out = append(out, s.index[k])
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Scenario != b.Scenario {
			return a.Scenario < b.Scenario
		}
		if a.Key.FPR != b.Key.FPR {
			return a.Key.FPR < b.Key.FPR
		}
		if a.Key.Seed != b.Key.Seed {
			return a.Key.Seed < b.Key.Seed
		}
		return a.Key.SimVersion < b.Key.SimVersion
	})
	return out
}

// Put archives a run under the key, returning its manifest entry and
// whether anything was written. Put is idempotent: a key already
// present returns its existing entry untouched (created == false),
// and identical traces under different keys share one
// content-addressed object. If the key exists but its object file has
// vanished (partial cleanup, a crashed recorder's debris removal),
// Put self-heals by rewriting the object — runs are deterministic, so
// the fresh result must reproduce the recorded artifact hash; a
// mismatch is reported instead of silently masking semantics drift.
func (s *Store) Put(scenarioName string, k Key, res *sim.Result) (Entry, bool, error) {
	if res == nil || res.Trace == nil {
		return Entry{}, false, fmt.Errorf("store: put %s: nil result or trace", scenarioName)
	}
	// Only full-level results are archivable: a Summary/Off run has no
	// rows, so archiving it would let the persistent tier later serve a
	// trace-less reconstruction as a disk hit (replay and EvaluateTrace
	// would see an empty run where a recorded one is claimed).
	if res.Level != trace.LevelFull {
		return Entry{}, false, fmt.Errorf(
			"store: put %s: refusing to archive a %s-level result (only %s traces are archivable)",
			scenarioName, res.Level, trace.LevelFull)
	}
	s.mu.Lock()
	existing, exists := s.index[k]
	if !exists {
		// Another process sharing the directory may have archived this
		// point already; the refresh turns that into an idempotent no-op
		// instead of a duplicate manifest line. Forced: the miss-path
		// debounce must never cause a duplicate append.
		s.refreshLocked(true)
		existing, exists = s.index[k]
	}
	closed := s.manifest == nil
	s.mu.Unlock()
	if exists {
		if _, _, err := s.locateObject(existing.Artifact); err == nil {
			return existing, false, nil
		}
		_, hash, err := serializeTrace(scenarioName, res)
		if err != nil {
			return existing, false, err
		}
		if hash != existing.Artifact {
			return existing, false, fmt.Errorf(
				"store: put %s: artifact %s is missing and the fresh run hashes to %s — simulator semantics drifted without a sim.Version bump?",
				scenarioName, existing.Artifact, hash)
		}
		if err := s.writeObject(hash, res.Trace); err != nil {
			return existing, false, err
		}
		return existing, true, nil
	}
	if closed {
		return Entry{}, false, fmt.Errorf("store: put %s: store closed", scenarioName)
	}

	buf, hash, err := serializeTrace(scenarioName, res)
	if err != nil {
		return Entry{}, false, err
	}
	if err := s.writeObject(hash, res.Trace); err != nil {
		return Entry{}, false, err
	}

	e := Entry{
		Key:             k,
		Scenario:        scenarioName,
		Artifact:        hash,
		Rows:            res.Trace.Len(),
		Bytes:           int64(len(buf)),
		Collision:       res.Collision,
		FramesProcessed: res.FramesProcessed,
		MinBumperGap:    res.MinBumperGap,
		EgoStopped:      res.EgoStopped,
		RecordedUnix:    time.Now().Unix(),
	}
	if math.IsInf(e.MinBumperGap, 1) {
		e.MinBumperGap, e.MinGapInfinite = 0, true
	}
	if e.FramesProcessed == nil {
		e.FramesProcessed = map[string]int{}
	}

	line, err := json.Marshal(e)
	if err != nil {
		return Entry{}, false, fmt.Errorf("store: put %s: %w", scenarioName, err)
	}
	line = append(line, '\n')

	s.mu.Lock()
	defer s.mu.Unlock()
	if prev, ok := s.index[k]; ok {
		// Lost the race to a concurrent recorder of the same point; the
		// object write above was idempotent, so just adopt its entry.
		return prev, false, nil
	}
	if s.manifest == nil {
		return Entry{}, false, fmt.Errorf("store: put %s: store closed", scenarioName)
	}
	if _, err := s.manifest.Write(line); err != nil {
		return Entry{}, false, fmt.Errorf("store: put %s: %w", scenarioName, err)
	}
	s.addLocked(e)
	return e, true, nil
}

// serializeTrace renders the result's trace to its canonical JSONL
// bytes and content hash.
func serializeTrace(scenarioName string, res *sim.Result) ([]byte, string, error) {
	var buf bytes.Buffer
	if err := res.Trace.Write(&buf); err != nil {
		return nil, "", fmt.Errorf("store: put %s: %w", scenarioName, err)
	}
	sum := sha256.Sum256(buf.Bytes())
	return buf.Bytes(), hex.EncodeToString(sum[:]), nil
}

// writeObject stores the trace artifact atomically (write to a temp
// file, rename into place) in the current binary format; an object
// already present in either format is reused. The .zyt payload is the
// raw ZYT1 stream, uncompressed: the format's column deltas already
// shrink the hot fields, and skipping gzip is where the disk tier's
// decode speed comes from.
func (s *Store) writeObject(hash string, tr *trace.Trace) error {
	if _, _, err := s.locateObject(hash); err == nil {
		return nil
	}
	path := s.ObjectPath(hash)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-"+hash+"-*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer os.Remove(tmp.Name())
	err = tr.WriteZYT(tmp)
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("store: write object %s: %w", hash, err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("store: write object %s: %w", hash, err)
	}
	return nil
}

// Trace loads and parses an entry's artifact from whichever format it
// is stored in — ZYT1 binary (current) or gzip JSONL (legacy) — so
// mixed-format stores read transparently.
func (s *Store) Trace(e Entry) (*trace.Trace, error) {
	path, legacy, err := s.locateObject(e.Artifact)
	if err != nil {
		return nil, err
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("store: artifact %s: %w", e.Artifact, err)
	}
	defer f.Close()
	var tr *trace.Trace
	if legacy {
		zr, err := gzip.NewReader(f)
		if err != nil {
			return nil, fmt.Errorf("store: artifact %s: %w", e.Artifact, err)
		}
		defer zr.Close()
		tr, err = trace.Read(zr)
		if err != nil {
			return nil, fmt.Errorf("store: artifact %s: %w", e.Artifact, err)
		}
		return tr, nil
	}
	tr, err = trace.ReadZYT(bufio.NewReaderSize(f, 256<<10))
	if err != nil {
		return nil, fmt.Errorf("store: artifact %s: %w", e.Artifact, err)
	}
	return tr, nil
}

// Get reconstructs the archived sim.Result for a key: the parsed trace
// plus the manifest's run summary. It reports (nil, false, nil) on a
// clean miss; a present key whose artifact cannot be read is an error.
// The reconstruction is deep-equal to the result a fresh simulation of
// the same point produces (the engine's persistent-tier equivalence
// test pins this).
func (s *Store) Get(k Key) (*sim.Result, bool, error) {
	e, ok := s.Lookup(k)
	if !ok {
		return nil, false, nil
	}
	tr, err := s.Trace(e)
	if err != nil {
		return nil, false, err
	}
	res := &sim.Result{
		Trace:           tr,
		Collision:       tr.Collision,
		FramesProcessed: e.FramesProcessed,
		MinBumperGap:    e.MinBumperGap,
		EgoStopped:      e.EgoStopped,
		Level:           trace.LevelFull, // only full traces are ever archived
	}
	if res.FramesProcessed == nil {
		res.FramesProcessed = map[string]int{}
	}
	if e.MinGapInfinite {
		res.MinBumperGap = math.Inf(1)
	}
	return res, true, nil
}
