// Package safety implements the Zhuyi-based AV system of paper §3.2
// (Figure 3): the world model and predicted trajectories feed the Zhuyi
// model online; its per-camera processing-rate estimates drive
//
//   - a safety check — an alarm when any camera's operating rate falls
//     below its estimated requirement, with the paper's three response
//     actions; and
//   - work prioritization — a rate controller that allocates a
//     constrained total frame budget across cameras in proportion to
//     the estimates instead of uniformly.
//
// The controller adds two engineering guards around the raw estimates:
// a per-camera rate floor (a camera whose FOV is empty still needs
// frames to discover new actors — the paper lists yet-to-be-detected
// objects as future work) and one-sided hysteresis (rates rise
// immediately but decay slowly, bridging the confirmation window after
// a threat leaves the world model while a new one is being confirmed).
package safety

import (
	"math"
	"slices"
	"strings"

	"repro/internal/core"
	"repro/internal/predict"
	"repro/internal/world"
)

// Alarm reports one camera operating below its Zhuyi requirement.
type Alarm struct {
	Time      float64
	Camera    string
	Required  float64 // estimated minimum FPR
	Operating float64 // current FPR
}

// Severity is the relative shortfall (required/operating − 1).
func (a Alarm) Severity() float64 {
	if a.Operating <= 0 {
		return math.Inf(1)
	}
	return a.Required/a.Operating - 1
}

// Action is the paper's safety-check response (§3.2).
type Action int

const (
	// ActionNone — all cameras meet their requirements.
	ActionNone Action = iota
	// ActionRaiseRate — request higher rates for the failing cameras
	// (response 3 in the paper).
	ActionRaiseRate
	// ActionLimitedFunctionality — shed non-essential work such as
	// infotainment (response 2).
	ActionLimitedFunctionality
	// ActionEmergencyBackup — activate the emergency back-up system
	// (response 1).
	ActionEmergencyBackup
)

// String implements fmt.Stringer.
func (a Action) String() string {
	switch a {
	case ActionNone:
		return "none"
	case ActionRaiseRate:
		return "raise-rate"
	case ActionLimitedFunctionality:
		return "limited-functionality"
	case ActionEmergencyBackup:
		return "emergency-backup"
	default:
		return "unknown"
	}
}

// CheckResult is one safety-check evaluation.
type CheckResult struct {
	Time   float64
	OK     bool
	Alarms []Alarm
	Action Action
}

// Check compares the operating per-camera rates against a Zhuyi
// estimate and escalates through the paper's three actions as the worst
// shortfall grows.
func Check(est core.Estimate, operating map[string]float64) CheckResult {
	var res CheckResult
	CheckInto(&res, est, operating)
	return res
}

// CheckInto is Check writing into dst, reusing dst.Alarms' capacity.
// The pooled /v1/rate path evaluates posted operating rates without
// allocating; dst's previous contents are overwritten.
func CheckInto(dst *CheckResult, est core.Estimate, operating map[string]float64) {
	dst.Time = est.Time
	dst.OK = true
	dst.Action = ActionNone
	dst.Alarms = dst.Alarms[:0]
	worst := 0.0
	for cam, required := range est.CameraFPR {
		op := operating[cam]
		if op+1e-9 >= required {
			continue
		}
		alarm := Alarm{Time: est.Time, Camera: cam, Required: required, Operating: op}
		dst.Alarms = append(dst.Alarms, alarm)
		if s := alarm.Severity(); s > worst {
			worst = s
		}
	}
	slices.SortFunc(dst.Alarms, func(a, b Alarm) int { return strings.Compare(a.Camera, b.Camera) })
	if len(dst.Alarms) == 0 {
		return
	}
	dst.OK = false
	switch {
	case worst >= 2: // operating at less than a third of the requirement
		dst.Action = ActionEmergencyBackup
	case worst >= 0.5:
		dst.Action = ActionLimitedFunctionality
	default:
		dst.Action = ActionRaiseRate
	}
}

// ControllerConfig tunes the work-prioritizing rate controller.
type ControllerConfig struct {
	Margin   float64 // headroom multiplier on the estimates (default 2)
	MinFPR   float64 // per-camera floor (default 1)
	MaxFPR   float64 // per-camera cap (default 30)
	Budget   float64 // total FPR across all cameras; 0 = unconstrained
	DecaySec float64 // max rate decrease per second (default 5); rises are instant
}

// DefaultControllerConfig returns the configuration used by the
// examples and benchmarks. The margin of 3 keeps cameras that watch an
// active threat fast enough that a newly revealed actor behind it (the
// cut-out pattern) confirms before the ego's braking budget is spent.
func DefaultControllerConfig() ControllerConfig {
	return ControllerConfig{Margin: 3, MinFPR: 1, MaxFPR: 30, DecaySec: 4}
}

// Controller is a sim.RateController driven by online Zhuyi estimates.
type Controller struct {
	Estimator *core.Estimator
	Predictor predict.Predictor
	Cfg       ControllerConfig

	// Guard, when set, floors camera rates for occluded corridor
	// regions (§5 future work; see OcclusionGuard).
	Guard *OcclusionGuard

	lastTime  float64
	lastRates map[string]float64
	checks    []CheckResult
	spare     map[string]float64 // recycled by RatesFromEstimateReuse
}

// NewController builds a controller over the estimator's cameras.
func NewController(est *core.Estimator, pred predict.Predictor, cfg ControllerConfig) *Controller {
	if cfg.Margin <= 0 {
		cfg.Margin = 2
	}
	if cfg.MinFPR <= 0 {
		cfg.MinFPR = 1
	}
	if cfg.MaxFPR <= 0 {
		cfg.MaxFPR = 30
	}
	if cfg.DecaySec <= 0 {
		cfg.DecaySec = 5
	}
	return &Controller{Estimator: est, Predictor: pred, Cfg: cfg, lastRates: map[string]float64{}}
}

// Rates implements sim.RateController: it runs the online Zhuyi
// estimate on the perceived world model, applies margin, floor, cap,
// hysteresis, and the optional budget, and logs a safety check against
// the rates that were operating until now.
func (c *Controller) Rates(now float64, ego world.Agent, wm []world.Agent) map[string]float64 {
	// l0: the controller aims to run each camera at its estimate, so the
	// conservative choice is the smallest latency it could be granted.
	l0 := 1 / c.Cfg.MaxFPR
	est := c.Estimator.EstimateOnline(now, ego, wm, c.Predictor, l0)
	return c.RatesFromEstimate(now, ego, wm, est)
}

// RatesFromEstimate is Rates with the online estimate already in hand.
// Callers that need both the raw estimate and the allocation — the
// campaign service's POST /v1/rate answers with both — use it to avoid
// running the estimator twice on the same snapshot. The estimate must
// be for this instant and this world model (ego and wm still feed the
// occlusion guard).
func (c *Controller) RatesFromEstimate(now float64, ego world.Agent, wm []world.Agent, est core.Estimate) map[string]float64 {
	return c.ratesFromEstimate(make(map[string]float64, len(est.CameraFPR)), now, ego, wm, est)
}

// RatesFromEstimateReuse is RatesFromEstimate returning an
// internally-owned map that stays valid only until the next call: the
// controller double-buffers its rate maps, so steady-state calls do
// not allocate. A controller used through this method must not also
// hand out maps via the allocating RatesFromEstimate (callers could
// observe them mutating). The pooled /v1/rate path owns its
// controllers outright and encodes the result before returning.
func (c *Controller) RatesFromEstimateReuse(now float64, ego world.Agent, wm []world.Agent, est core.Estimate) map[string]float64 {
	desired := c.spare
	if desired == nil {
		desired = make(map[string]float64, len(est.CameraFPR))
	}
	clear(desired)
	prev := c.lastRates
	out := c.ratesFromEstimate(desired, now, ego, wm, est)
	c.spare = prev
	return out
}

// Reset returns the controller to its just-constructed state (no rate
// history, no hysteresis baseline, empty check log) while keeping its
// maps' and slices' capacity. Pooled serving contexts Reset between
// requests so each request behaves like a fresh controller.
func (c *Controller) Reset() {
	clear(c.lastRates)
	c.lastTime = 0
	c.checks = c.checks[:0]
}

func (c *Controller) ratesFromEstimate(desired map[string]float64, now float64, ego world.Agent, wm []world.Agent, est core.Estimate) map[string]float64 {
	l0 := 1 / c.Cfg.MaxFPR

	if len(c.lastRates) > 0 {
		c.checks = append(c.checks, Check(est, c.lastRates))
	}

	dt := now - c.lastTime
	if dt < 0 {
		dt = 0
	}
	for cam, f := range est.CameraFPR {
		var r float64
		if !est.CameraThreat[cam] {
			// No actor with a conflicting trajectory in this camera's
			// FOV: run at the floor. Margin headroom is reserved for
			// cameras watching real threats.
			r = c.Cfg.MinFPR
		} else {
			r = clamp(f*c.Cfg.Margin, c.Cfg.MinFPR, c.Cfg.MaxFPR)
		}
		if prev, ok := c.lastRates[cam]; ok && r < prev {
			// One-sided hysteresis: decay slowly toward the lower rate.
			floor := prev - c.Cfg.DecaySec*dt
			if r < floor {
				r = floor
			}
		}
		desired[cam] = r
	}
	if c.Guard != nil {
		for cam, floor := range c.Guard.Floors(ego, wm, l0) {
			if _, ok := desired[cam]; !ok {
				continue
			}
			floor = clamp(floor, c.Cfg.MinFPR, c.Cfg.MaxFPR)
			if desired[cam] < floor {
				desired[cam] = floor
			}
		}
	}
	if c.Cfg.Budget > 0 {
		desired = c.applyBudget(desired, est)
	}
	c.lastRates = desired
	c.lastTime = now
	return desired
}

// applyBudget scales rates into the total budget, preserving each
// camera's raw Zhuyi estimate as a floor when the budget allows: safety
// demand is met first, headroom is distributed proportionally.
func (c *Controller) applyBudget(desired map[string]float64, est core.Estimate) map[string]float64 {
	total := 0.0
	for _, r := range desired {
		total += r
	}
	if total <= c.Cfg.Budget {
		return desired
	}
	// First pass: everyone gets max(MinFPR, raw estimate) — the safety
	// floor.
	out := make(map[string]float64, len(desired))
	floorSum := 0.0
	for cam := range desired {
		f := clamp(est.CameraFPR[cam], c.Cfg.MinFPR, c.Cfg.MaxFPR)
		out[cam] = f
		floorSum += f
	}
	remaining := c.Cfg.Budget - floorSum
	if remaining <= 0 {
		// Budget cannot even cover the estimates: scale the floors
		// proportionally (the safety check will raise alarms).
		scale := c.Cfg.Budget / floorSum
		for cam := range out {
			out[cam] = math.Max(c.Cfg.MinFPR, out[cam]*scale)
		}
		return out
	}
	// Second pass: distribute the headroom proportionally to the desired
	// excess over the floor.
	excessSum := 0.0
	for cam, r := range desired {
		if r > out[cam] {
			excessSum += r - out[cam]
		}
	}
	if excessSum <= 0 {
		return out
	}
	for cam, r := range desired {
		if r > out[cam] {
			out[cam] += (r - out[cam]) / excessSum * remaining
		}
	}
	return out
}

// Checks returns the safety-check log accumulated across the run.
func (c *Controller) Checks() []CheckResult { return c.checks }

// AlarmCount returns the number of evaluations that raised any alarm.
func (c *Controller) AlarmCount() int {
	n := 0
	for _, ck := range c.checks {
		if !ck.OK {
			n++
		}
	}
	return n
}

// WorstAction returns the most severe action recommended across the run.
func (c *Controller) WorstAction() Action {
	worst := ActionNone
	for _, ck := range c.checks {
		if ck.Action > worst {
			worst = ck.Action
		}
	}
	return worst
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// UniformRates is a trivial sim.RateController that divides a total
// budget evenly — the baseline the prioritizer is compared against.
type UniformRates struct {
	Cameras []string
	Budget  float64
}

// Rates implements sim.RateController.
func (u UniformRates) Rates(float64, world.Agent, []world.Agent) map[string]float64 {
	out := make(map[string]float64, len(u.Cameras))
	if len(u.Cameras) == 0 {
		return out
	}
	per := u.Budget / float64(len(u.Cameras))
	for _, cam := range u.Cameras {
		out[cam] = per
	}
	return out
}
