package safety

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/predict"
	"repro/internal/sensor"
	"repro/internal/world"
)

func estWith(front, left, right float64) core.Estimate {
	return core.Estimate{
		Time: 1,
		CameraFPR: map[string]float64{
			sensor.Front120: front,
			sensor.Left:     left,
			sensor.Right:    right,
		},
	}
}

func TestCheckAllMeeting(t *testing.T) {
	est := estWith(5, 1, 1)
	res := Check(est, map[string]float64{sensor.Front120: 10, sensor.Left: 2, sensor.Right: 2})
	if !res.OK || len(res.Alarms) != 0 || res.Action != ActionNone {
		t.Errorf("check = %+v", res)
	}
}

func TestCheckRaisesAlarm(t *testing.T) {
	est := estWith(8, 1, 1)
	res := Check(est, map[string]float64{sensor.Front120: 6, sensor.Left: 2, sensor.Right: 2})
	if res.OK || len(res.Alarms) != 1 {
		t.Fatalf("check = %+v", res)
	}
	a := res.Alarms[0]
	if a.Camera != sensor.Front120 || a.Required != 8 || a.Operating != 6 {
		t.Errorf("alarm = %+v", a)
	}
	if res.Action != ActionRaiseRate {
		t.Errorf("action = %v, want raise-rate", res.Action)
	}
}

func TestCheckEscalation(t *testing.T) {
	// Operating at less than half triggers limited functionality; less
	// than a third triggers emergency backup.
	est := estWith(9, 1, 1)
	res := Check(est, map[string]float64{sensor.Front120: 5, sensor.Left: 1, sensor.Right: 1})
	if res.Action != ActionLimitedFunctionality {
		t.Errorf("action = %v, want limited-functionality", res.Action)
	}
	res = Check(est, map[string]float64{sensor.Front120: 2, sensor.Left: 1, sensor.Right: 1})
	if res.Action != ActionEmergencyBackup {
		t.Errorf("action = %v, want emergency-backup", res.Action)
	}
}

func TestAlarmSeverity(t *testing.T) {
	a := Alarm{Required: 10, Operating: 5}
	if got := a.Severity(); math.Abs(got-1) > 1e-9 {
		t.Errorf("severity = %v", got)
	}
	z := Alarm{Required: 10, Operating: 0}
	if !math.IsInf(z.Severity(), 1) {
		t.Errorf("zero operating severity = %v", z.Severity())
	}
}

func TestActionString(t *testing.T) {
	cases := map[Action]string{
		ActionNone:                 "none",
		ActionRaiseRate:            "raise-rate",
		ActionLimitedFunctionality: "limited-functionality",
		ActionEmergencyBackup:      "emergency-backup",
		Action(99):                 "unknown",
	}
	for a, want := range cases {
		if a.String() != want {
			t.Errorf("%d.String() = %q", a, a.String())
		}
	}
}

func newTestController(cfg ControllerConfig) *Controller {
	est := core.NewEstimator()
	pred := predict.MultiHypothesis{Horizon: est.Params.Horizon, Dt: 0.1}
	return NewController(est, pred, cfg)
}

func egoAgent(speed float64) world.Agent {
	return world.Agent{ID: world.EgoID, Pose: geom.Pose{Pos: geom.V(0, 0)}, Speed: speed, Length: 4.6, Width: 1.9}
}

func threatAgent(dist float64) world.Agent {
	return world.Agent{ID: "obs", Pose: geom.Pose{Pos: geom.V(dist, 0)}, Length: 4, Width: 1.9, Static: true}
}

func TestControllerRaisesFrontUnderThreat(t *testing.T) {
	c := newTestController(DefaultControllerConfig())
	rates := c.Rates(0, egoAgent(30), []world.Agent{threatAgent(90)})
	if rates[sensor.Front120] <= rates[sensor.Left] {
		t.Errorf("front %v not prioritized over left %v", rates[sensor.Front120], rates[sensor.Left])
	}
	if rates[sensor.Left] != c.Cfg.MinFPR {
		t.Errorf("idle left camera rate = %v, want floor %v", rates[sensor.Left], c.Cfg.MinFPR)
	}
}

func TestControllerFloorsAndCaps(t *testing.T) {
	cfg := DefaultControllerConfig()
	cfg.MinFPR = 2
	cfg.MaxFPR = 20
	c := newTestController(cfg)
	// Unavoidable threat: estimate saturates; cap applies.
	rates := c.Rates(0, egoAgent(35), []world.Agent{threatAgent(20)})
	if rates[sensor.Front120] != 20 {
		t.Errorf("front rate = %v, want cap 20", rates[sensor.Front120])
	}
	// Empty world: floor applies everywhere.
	c2 := newTestController(cfg)
	rates = c2.Rates(0, egoAgent(30), nil)
	for cam, r := range rates {
		if r != 2 {
			t.Errorf("camera %s rate = %v, want floor 2", cam, r)
		}
	}
}

func TestControllerHysteresisDecay(t *testing.T) {
	cfg := DefaultControllerConfig()
	cfg.DecaySec = 4
	c := newTestController(cfg)
	// Threat present: front rate rises.
	r1 := c.Rates(0, egoAgent(30), []world.Agent{threatAgent(90)})
	high := r1[sensor.Front120]
	if high <= cfg.MinFPR {
		t.Fatalf("front rate = %v, expected elevated", high)
	}
	// Threat vanishes: rate must decay at most DecaySec per second, not
	// collapse instantly.
	r2 := c.Rates(0.1, egoAgent(30), nil)
	wantFloor := high - 4*0.1
	if r2[sensor.Front120] < wantFloor-1e-9 {
		t.Errorf("front rate dropped to %v, floor %v", r2[sensor.Front120], wantFloor)
	}
	// After enough time it settles at the per-camera floor.
	last := r2[sensor.Front120]
	for i := 2; i < 100; i++ {
		r := c.Rates(float64(i)*0.1, egoAgent(30), nil)
		if r[sensor.Front120] > last+1e-9 {
			t.Fatalf("rate increased without threat at step %d", i)
		}
		last = r[sensor.Front120]
	}
	if last != cfg.MinFPR {
		t.Errorf("final rate = %v, want floor %v", last, cfg.MinFPR)
	}
}

func TestControllerBudgetPreservesEstimates(t *testing.T) {
	cfg := DefaultControllerConfig()
	cfg.Budget = 12
	cfg.Margin = 3
	c := newTestController(cfg)
	// A moderate threat whose estimate fits inside the budget.
	rates := c.Rates(0, egoAgent(20), []world.Agent{threatAgent(140)})
	total := 0.0
	for _, r := range rates {
		total += r
	}
	if total > cfg.Budget+1e-6 {
		t.Errorf("total rate %v exceeds budget %v", total, cfg.Budget)
	}
	// The binding camera is prioritized over the idle side cameras.
	if rates[sensor.Front120] <= rates[sensor.Left] {
		t.Errorf("front %v not prioritized over left %v under budget", rates[sensor.Front120], rates[sensor.Left])
	}
}

func TestControllerImpossibleBudgetKeepsFloors(t *testing.T) {
	// When even the raw estimates exceed the budget, the controller
	// scales down but never starves a camera below MinFPR — the floors
	// may then overshoot the budget slightly, and the safety check is
	// what reports the shortfall.
	cfg := DefaultControllerConfig()
	cfg.Budget = 12
	cfg.Margin = 3
	c := newTestController(cfg)
	rates := c.Rates(0, egoAgent(35), []world.Agent{threatAgent(25)}) // saturating threat
	for cam, r := range rates {
		if r < cfg.MinFPR-1e-9 {
			t.Errorf("camera %s starved below MinFPR: %v", cam, r)
		}
	}
	if rates[sensor.Front120] <= rates[sensor.Left] {
		t.Error("saturating front threat not prioritized")
	}
}

func TestControllerBudgetOverflowScales(t *testing.T) {
	cfg := DefaultControllerConfig()
	cfg.Budget = 4 // below even the floors of five cameras
	c := newTestController(cfg)
	rates := c.Rates(0, egoAgent(30), []world.Agent{threatAgent(60)})
	for cam, r := range rates {
		if r < cfg.MinFPR-1e-9 {
			t.Errorf("camera %s below MinFPR: %v", cam, r)
		}
	}
	// With the budget impossible to honor, safety checks accumulate
	// alarms on subsequent evaluations.
	c.Rates(0.1, egoAgent(30), []world.Agent{threatAgent(50)})
	if c.AlarmCount() == 0 {
		t.Error("no alarms under an impossible budget")
	}
	if c.WorstAction() == ActionNone {
		t.Error("no action recommended under an impossible budget")
	}
}

func TestControllerChecksLog(t *testing.T) {
	c := newTestController(DefaultControllerConfig())
	c.Rates(0, egoAgent(30), []world.Agent{threatAgent(100)})
	c.Rates(0.1, egoAgent(30), []world.Agent{threatAgent(95)})
	c.Rates(0.2, egoAgent(30), []world.Agent{threatAgent(90)})
	if len(c.Checks()) != 2 { // first call has no prior rates to check
		t.Errorf("checks logged = %d, want 2", len(c.Checks()))
	}
}

func TestUniformRates(t *testing.T) {
	u := UniformRates{Cameras: []string{"a", "b", "c"}, Budget: 9}
	rates := u.Rates(0, world.Agent{}, nil)
	for _, cam := range u.Cameras {
		if rates[cam] != 3 {
			t.Errorf("camera %s = %v, want 3", cam, rates[cam])
		}
	}
	empty := UniformRates{}
	if len(empty.Rates(0, world.Agent{}, nil)) != 0 {
		t.Error("empty uniform rates not empty")
	}
}
