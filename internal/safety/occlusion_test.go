package safety

import (
	"testing"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/sensor"
	"repro/internal/world"
)

func leadAt(dist, speed float64) world.Agent {
	return world.Agent{ID: "lead", Pose: geom.Pose{Pos: geom.V(dist, 0)}, Speed: speed, Length: 4.6, Width: 1.9}
}

func TestGuardNoOccluderNoFloors(t *testing.T) {
	g := NewOcclusionGuard(core.NewEstimator())
	if floors := g.Floors(egoAgent(25), nil, 0.033); len(floors) != 0 {
		t.Errorf("floors on empty corridor: %v", floors)
	}
	// An adjacent-lane actor is not a corridor occluder.
	side := world.Agent{ID: "side", Pose: geom.Pose{Pos: geom.V(20, 3.5)}, Speed: 25, Length: 4.6, Width: 1.9}
	if floors := g.Floors(egoAgent(25), []world.Agent{side}, 0.033); len(floors) != 0 {
		t.Errorf("floors for adjacent-lane actor: %v", floors)
	}
	// An actor behind the ego occludes nothing ahead.
	rear := world.Agent{ID: "rear", Pose: geom.Pose{Pos: geom.V(-20, 0)}, Speed: 25, Length: 4.6, Width: 1.9}
	if floors := g.Floors(egoAgent(25), []world.Agent{rear}, 0.033); len(floors) != 0 {
		t.Errorf("floors for rear actor: %v", floors)
	}
}

func TestGuardFloorsFrontCameras(t *testing.T) {
	g := NewOcclusionGuard(core.NewEstimator())
	floors := g.Floors(egoAgent(17.9), []world.Agent{leadAt(30, 17.9)}, 0.033)
	if len(floors) == 0 {
		t.Fatal("no floors for an occluded corridor")
	}
	if _, ok := floors[sensor.Front120]; !ok {
		t.Errorf("front camera not floored: %v", floors)
	}
	if _, ok := floors[sensor.Rear]; ok {
		t.Errorf("rear camera floored: %v", floors)
	}
	if floors[sensor.Front120] <= 1 {
		t.Errorf("front floor = %v, want > 1", floors[sensor.Front120])
	}
}

func TestGuardFloorMonotoneInOccluderDistance(t *testing.T) {
	// A closer occluder hides closer space: the floor must not decrease
	// as the occluder approaches.
	g := NewOcclusionGuard(core.NewEstimator())
	prev := 0.0
	for _, dist := range []float64{120, 80, 50, 35, 25} {
		floors := g.Floors(egoAgent(20), []world.Agent{leadAt(dist, 20)}, 0.033)
		f := floors[sensor.Front120]
		if f < prev-1e-9 {
			t.Fatalf("floor decreased as occluder closed: %v after %v (dist %v)", f, prev, dist)
		}
		prev = f
	}
	if prev <= 1 {
		t.Errorf("closest occluder floor = %v, want demanding", prev)
	}
}

func TestGuardSaturatesWhenHiddenObstacleUnavoidable(t *testing.T) {
	g := NewOcclusionGuard(core.NewEstimator())
	g.Clearance = 2
	// 35 m/s with an occluder 20 m ahead: a hidden obstacle at ~26 m is
	// unavoidable, so the floor saturates at 1/LMin.
	floors := g.Floors(egoAgent(35), []world.Agent{leadAt(20, 35)}, 0.033)
	want := 1 / g.Estimator.Params.LMin
	if floors[sensor.Front120] < want-1e-6 {
		t.Errorf("floor = %v, want saturation %v", floors[sensor.Front120], want)
	}
}

func TestGuardUsesNearestOccluder(t *testing.T) {
	g := NewOcclusionGuard(core.NewEstimator())
	near := g.Floors(egoAgent(20), []world.Agent{leadAt(30, 20)}, 0.033)
	both := g.Floors(egoAgent(20), []world.Agent{leadAt(90, 20), leadAt(30, 20)}, 0.033)
	if near[sensor.Front120] != both[sensor.Front120] {
		t.Errorf("nearest occluder not binding: %v vs %v", near[sensor.Front120], both[sensor.Front120])
	}
}

func TestControllerWithGuardKeepsRatesUpBehindLead(t *testing.T) {
	// Following a benign lead: without the guard the front camera can
	// relax toward the idle floor; with the guard it must stay at the
	// hidden-obstacle vigilance level.
	mk := func(guard bool) float64 {
		est := core.NewEstimator()
		est.Cameras = est.Rig.Names()
		c := newTestController(DefaultControllerConfig())
		c.Estimator = est
		if guard {
			c.Guard = NewOcclusionGuard(est)
		}
		// A slow, far lead whose own estimate is mild.
		var last map[string]float64
		for i := 0; i < 30; i++ {
			last = c.Rates(float64(i)*0.1, egoAgent(15), []world.Agent{leadAt(60, 15)})
		}
		return last[sensor.Front120]
	}
	without := mk(false)
	with := mk(true)
	if with < without {
		t.Errorf("guarded rate %v below unguarded %v", with, without)
	}
}
