package safety

import (
	"math"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/world"
)

// OcclusionGuard implements the second of the paper's §5 future-work
// directions: "accounting for occlusions in the world model, and
// incorporating yet-to-be-detected objects."
//
// A tracked actor in the ego's corridor hides everything behind it. The
// guard assumes the worst case the paper's Cut-out scenario realizes —
// a static obstacle sitting just beyond the occluder, revealed the
// moment the occluder departs — runs the Zhuyi latency search for that
// hypothetical obstacle, and floors the rates of the cameras that would
// have to confirm it. Rates therefore stay high while the corridor is
// occluded even though the visible world model looks benign.
type OcclusionGuard struct {
	Estimator *core.Estimator
	// Clearance is the assumed gap between the occluder's rear and the
	// hidden obstacle, m (how optimistic the guard is about hidden
	// space). Small values are more conservative.
	Clearance float64
	// CorridorHalfWidth bounds which world-model actors count as
	// corridor occluders.
	CorridorHalfWidth float64
}

// NewOcclusionGuard builds a guard with conventional defaults.
func NewOcclusionGuard(est *core.Estimator) *OcclusionGuard {
	return &OcclusionGuard{Estimator: est, Clearance: 8, CorridorHalfWidth: 2.2}
}

// Floors returns per-camera minimum FPRs implied by hidden corridor
// regions, empty when the corridor is clear. l0 is the current
// processing latency used by the confirmation-delay model.
func (g *OcclusionGuard) Floors(ego world.Agent, wm []world.Agent, l0 float64) map[string]float64 {
	occluderDist, found := g.nearestOccluder(ego, wm)
	if !found {
		return nil
	}
	hidden := occluderDist + g.Clearance
	latency := g.hiddenObstacleLatency(ego, hidden, l0)

	p := g.Estimator.Params
	var fpr float64
	switch {
	case latency <= 0: // unavoidable if an obstacle lurks there: saturate
		fpr = 1 / p.LMin
	default:
		fpr = 1 / latency
	}

	floors := make(map[string]float64, 2)
	// The cameras that must confirm the revealed obstacle are those
	// whose FOV covers the corridor at the hidden distance.
	probe := ego.Pose.ToWorld(geom.V(hidden, 0))
	for _, cam := range g.Estimator.Rig {
		if cam.SeesPoint(ego.Pose, probe) {
			floors[cam.Name] = fpr
		}
	}
	return floors
}

// nearestOccluder returns the bumper distance to the closest
// world-model actor ahead of the ego inside its corridor.
func (g *OcclusionGuard) nearestOccluder(ego world.Agent, wm []world.Agent) (float64, bool) {
	best := math.Inf(1)
	found := false
	for _, a := range wm {
		local := ego.Pose.ToLocal(a.Pose.Pos)
		if math.Abs(local.Y) > g.CorridorHalfWidth {
			continue
		}
		dist := local.X + a.Length/2 // far edge of the occluder
		if local.X < ego.Length/2 {
			continue // beside or behind
		}
		if dist < best {
			best = dist
			found = true
		}
	}
	return best, found
}

// hiddenObstacleLatency runs the Zhuyi search for a hypothetical static
// obstacle at the given distance ahead of the ego.
func (g *OcclusionGuard) hiddenObstacleLatency(ego world.Agent, dist float64, l0 float64) float64 {
	p := g.Estimator.Params
	pos := ego.Pose.ToWorld(geom.V(dist, 0))
	pts := []world.TrajectoryPoint{
		{T: 0, Pos: pos},
		{T: p.Horizon, Pos: pos},
	}
	traj := world.Trajectory{ActorID: "hidden", Prob: 1, Points: pts}
	res := core.TolerableLatency(core.EgoFromAgent(ego), traj, [2]float64{4.0, 1.9}, l0, p)
	if !res.Feasible {
		return 0
	}
	return res.Latency
}
