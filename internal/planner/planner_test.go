package planner

import (
	"math"
	"testing"

	"repro/internal/geom"
	"repro/internal/road"
	"repro/internal/vehicle"
	"repro/internal/world"
)

func setup(desired float64) (*Planner, vehicle.Params) {
	r := road.NewStraight(3, 5000)
	p := vehicle.Car()
	return New(DefaultConfig(desired, p), r), p
}

func perceived(id string, s, d, speed float64) world.Agent {
	return world.Agent{
		ID:     id,
		Pose:   geom.Pose{Pos: geom.V(s, d), Heading: 0},
		Speed:  speed,
		Length: 4.6,
		Width:  1.9,
	}
}

func TestFreeRoadAccelerates(t *testing.T) {
	pl, params := setup(30)
	ego := vehicle.FrenetState{S: 0, D: 3.5, Speed: 20}
	d := pl.Plan(ego, params, nil)
	if d.Accel <= 0 {
		t.Errorf("free road accel = %v, want > 0", d.Accel)
	}
	if d.AEB || d.LeadID != "" {
		t.Errorf("decision = %+v", d)
	}
}

func TestFreeRoadHoldsDesiredSpeed(t *testing.T) {
	pl, params := setup(25)
	ego := vehicle.FrenetState{S: 0, D: 3.5, Speed: 25}
	d := pl.Plan(ego, params, nil)
	if math.Abs(d.Accel) > 0.1 {
		t.Errorf("accel at desired speed = %v, want ~0", d.Accel)
	}
	fast := vehicle.FrenetState{S: 0, D: 3.5, Speed: 30}
	d = pl.Plan(fast, params, nil)
	if d.Accel >= 0 {
		t.Errorf("accel above desired speed = %v, want < 0", d.Accel)
	}
}

func TestFollowsSlowerLead(t *testing.T) {
	pl, params := setup(30)
	ego := vehicle.FrenetState{S: 0, D: 3.5, Speed: 30}
	wm := []world.Agent{perceived("lead", 40, 3.5, 20)}
	d := pl.Plan(ego, params, wm)
	if d.LeadID != "lead" {
		t.Fatalf("lead = %q", d.LeadID)
	}
	if d.Accel >= 0 {
		t.Errorf("accel approaching slower lead = %v, want < 0", d.Accel)
	}
	wantGap := 40.0 - 4.6
	if math.Abs(d.Gap-wantGap) > 1e-9 {
		t.Errorf("gap = %v, want %v", d.Gap, wantGap)
	}
}

func TestIgnoresAdjacentLaneActor(t *testing.T) {
	pl, params := setup(30)
	ego := vehicle.FrenetState{S: 0, D: 3.5, Speed: 30}
	wm := []world.Agent{perceived("side", 30, 7.0, 10)} // one lane left
	d := pl.Plan(ego, params, wm)
	if d.LeadID != "" {
		t.Errorf("adjacent-lane actor selected as lead: %+v", d)
	}
}

func TestIgnoresActorBehind(t *testing.T) {
	pl, params := setup(30)
	ego := vehicle.FrenetState{S: 100, D: 3.5, Speed: 30}
	wm := []world.Agent{perceived("rear", 50, 3.5, 35)}
	d := pl.Plan(ego, params, wm)
	if d.LeadID != "" {
		t.Errorf("rear actor selected as lead: %+v", d)
	}
}

func TestSelectsNearestLead(t *testing.T) {
	pl, params := setup(30)
	ego := vehicle.FrenetState{S: 0, D: 3.5, Speed: 30}
	wm := []world.Agent{
		perceived("far", 90, 3.5, 20),
		perceived("near", 45, 3.5, 20),
	}
	d := pl.Plan(ego, params, wm)
	if d.LeadID != "near" {
		t.Errorf("lead = %q, want near", d.LeadID)
	}
}

func TestAEBTriggersOnStoppedObstacle(t *testing.T) {
	pl, params := setup(30)
	// 30 m/s with a stopped obstacle 50 m ahead: required decel ≈
	// 30²/(2·(50-4.6-2.5)) ≈ 10.5 m/s² — far beyond the trigger.
	ego := vehicle.FrenetState{S: 0, D: 3.5, Speed: 30}
	wm := []world.Agent{perceived("obs", 50, 3.5, 0)}
	d := pl.Plan(ego, params, wm)
	if !d.AEB {
		t.Fatal("AEB not triggered")
	}
	if d.Accel != -params.MaxBrake {
		t.Errorf("AEB accel = %v, want %v", d.Accel, -params.MaxBrake)
	}
}

func TestAEBNotTriggeredWithComfortableGap(t *testing.T) {
	pl, params := setup(30)
	ego := vehicle.FrenetState{S: 0, D: 3.5, Speed: 20}
	wm := []world.Agent{perceived("lead", 150, 3.5, 20)}
	d := pl.Plan(ego, params, wm)
	if d.AEB {
		t.Errorf("AEB with 150 m gap at matched speed: %+v", d)
	}
}

func TestAEBLatchesAndReleases(t *testing.T) {
	pl, params := setup(30)
	ego := vehicle.FrenetState{S: 0, D: 3.5, Speed: 30}
	wm := []world.Agent{perceived("obs", 60, 3.5, 0)}
	d := pl.Plan(ego, params, wm)
	if !d.AEB {
		t.Fatal("AEB not triggered")
	}
	// Even as the required decel dips with a slightly larger gap, the
	// latch holds while the ego is still much faster than the lead.
	egoSlower := vehicle.FrenetState{S: 0, D: 3.5, Speed: 15}
	d = pl.Plan(egoSlower, params, []world.Agent{perceived("obs", 200, 3.5, 14.8)})
	if d.AEB {
		t.Error("AEB did not release after threat cleared")
	}
}

func TestCutInLateralVelocityNotCountedAsClosing(t *testing.T) {
	pl, params := setup(30)
	ego := vehicle.FrenetState{S: 0, D: 3.5, Speed: 25}
	cutIn := perceived("cut", 40, 3.5, 25)
	cutIn.LatVel = -2 // still moving laterally into the lane
	d := pl.Plan(ego, params, []world.Agent{cutIn})
	// Same longitudinal speed: mild reaction, no AEB.
	if d.AEB {
		t.Errorf("AEB on matched-speed cut-in: %+v", d)
	}
}

func TestRequiredDecel(t *testing.T) {
	if got := requiredDecel(20, 20, 50); got != 0 {
		t.Errorf("no excess speed: %v", got)
	}
	if got := requiredDecel(20, 0, 20); math.Abs(got-10) > 1e-9 {
		t.Errorf("stop in 20 m from 20 m/s: %v, want 10", got)
	}
	if got := requiredDecel(20, 0, 0); got < 1e2 {
		t.Errorf("zero distance: %v, want sentinel", got)
	}
	if got := requiredDecel(20, -5, 20); math.Abs(got-10) > 1e-9 {
		t.Errorf("negative lead speed clamps to 0: %v", got)
	}
}

func TestClosedLoopFollowingConverges(t *testing.T) {
	// With perfect perception the IDM must settle behind a steady lead
	// without collision or oscillation.
	pl, params := setup(32)
	r := pl.Road
	_ = r
	ego := vehicle.FrenetState{S: 0, D: 3.5, Speed: 32}
	leadS := 80.0
	leadV := 22.0
	const dt = 0.01
	minGap := math.Inf(1)
	for i := 0; i < 6000; i++ {
		wm := []world.Agent{perceived("lead", leadS, 3.5, leadV)}
		d := pl.Plan(ego, params, wm)
		ego.Accel = params.ClampAccel(d.Accel, ego.Speed)
		ego = ego.Step(dt)
		leadS += leadV * dt
		gap := leadS - ego.S - 4.6
		if gap < minGap {
			minGap = gap
		}
	}
	if minGap <= 0 {
		t.Fatalf("collision in closed loop: min gap %v", minGap)
	}
	finalGap := leadS - ego.S - 4.6
	wantGap := 2.5 + leadV*1.4 // s0 + v·T
	if math.Abs(finalGap-wantGap) > 6 {
		t.Errorf("settled gap = %v, want ~%v", finalGap, wantGap)
	}
	if math.Abs(ego.Speed-leadV) > 1 {
		t.Errorf("settled speed = %v, want ~%v", ego.Speed, leadV)
	}
}
