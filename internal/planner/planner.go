// Package planner implements the ego driving policy used by the
// simulated AV stack: an Intelligent Driver Model (IDM) car-following
// controller for normal operation plus an automatic emergency braking
// (AEB) safety procedure. The paper's Zhuyi model assumes hard braking
// as the safety procedure; AEB is the closed-loop realization of that
// assumption. The planner consumes the *perceived* world model, so its
// reaction time inherits the perception stack's frame-rate-dependent
// latency — the quantity Zhuyi estimates bounds for.
package planner

import (
	"math"

	"repro/internal/road"
	"repro/internal/vehicle"
	"repro/internal/world"
)

// Config tunes the driving policy.
type Config struct {
	DesiredSpeed      float64 // v0: free-road cruising speed, m/s
	TimeHeadway       float64 // T: desired time gap to the lead, s
	MinGap            float64 // s0: standstill bumper gap, m
	MaxAccel          float64 // a: IDM acceleration, m/s²
	ComfortBrake      float64 // b: IDM comfortable deceleration, m/s²
	MaxBrake          float64 // AEB hard-braking deceleration, m/s²
	AEBTrigger        float64 // required decel that arms AEB, m/s²
	AEBRelease        float64 // required decel below which AEB disarms, m/s²
	CorridorHalfWidth float64 // lateral half-width of the ego corridor, m
}

// DefaultConfig returns a policy tuned for the scenario vehicles.
func DefaultConfig(desiredSpeed float64, p vehicle.Params) Config {
	return Config{
		DesiredSpeed:      desiredSpeed,
		TimeHeadway:       1.4,
		MinGap:            2.5,
		MaxAccel:          p.MaxAccel,
		ComfortBrake:      p.ComfortBrake,
		MaxBrake:          p.MaxBrake,
		AEBTrigger:        3.4,
		AEBRelease:        2.0,
		CorridorHalfWidth: 2.2,
	}
}

// Decision is one planning output.
type Decision struct {
	Accel  float64 // commanded longitudinal acceleration, m/s²
	AEB    bool    // hard-braking safety procedure active
	LeadID string  // selected lead vehicle, "" if none
	Gap    float64 // bumper-to-bumper gap to the lead, m
}

// Planner holds policy state (the AEB latch) across steps.
type Planner struct {
	Cfg  Config
	Road *road.Road

	aebActive bool

	// twoSqrtAB caches 2·sqrt(a·b), the IDM interaction denominator —
	// a pure function of the config that idm would otherwise recompute
	// every step. Zero means "not yet derived" (direct struct literals
	// skip New), and idm falls back to computing it on the spot.
	twoSqrtAB float64
}

// New builds a planner.
func New(cfg Config, r *road.Road) *Planner {
	return &Planner{Cfg: cfg, Road: r, twoSqrtAB: 2 * math.Sqrt(cfg.MaxAccel*cfg.ComfortBrake)}
}

// Plan computes the longitudinal command for the ego given its own
// lane-relative state and the perceived world model.
func (p *Planner) Plan(ego vehicle.FrenetState, egoParams vehicle.Params, wm []world.Agent) Decision {
	leadIdx, leadS, gap := p.selectLead(ego, egoParams, wm)

	var d Decision
	if leadIdx < 0 {
		p.aebActive = false
		d.Accel = p.idm(ego.Speed, 0, math.Inf(1))
		d.Gap = math.Inf(1)
		return d
	}

	lead := &wm[leadIdx]
	leadSpeed := p.leadSpeed(lead, leadS)
	d.LeadID = lead.ID
	d.Gap = gap

	// AEB arming: the deceleration needed to slow to the lead's speed
	// within the available gap.
	req := requiredDecel(ego.Speed, leadSpeed, gap-p.Cfg.MinGap)
	switch {
	case gap <= p.Cfg.MinGap/2:
		p.aebActive = true
	case !p.aebActive && req >= p.Cfg.AEBTrigger:
		p.aebActive = true
	case p.aebActive && req <= p.Cfg.AEBRelease && ego.Speed <= leadSpeed+0.5:
		p.aebActive = false
	}

	if p.aebActive {
		d.AEB = true
		d.Accel = -p.Cfg.MaxBrake
		return d
	}

	d.Accel = p.idm(ego.Speed, leadSpeed, gap)
	return d
}

// selectLead picks the nearest perceived agent ahead of the ego inside
// its corridor, returning its index in wm (-1 if none), its projected
// station, and the bumper gap. Tracking the winner by index (and
// carrying its station to leadSpeed) keeps per-candidate Agent copies
// and a duplicate road projection off the per-step path.
func (p *Planner) selectLead(ego vehicle.FrenetState, egoParams vehicle.Params, wm []world.Agent) (int, float64, float64) {
	bestGap := math.Inf(1)
	bestIdx := -1
	bestS := 0.0
	for i := range wm {
		a := &wm[i]
		s, d := p.Road.Frenet(a.Pose.Pos)
		if math.Abs(d-ego.D) > p.Cfg.CorridorHalfWidth {
			continue
		}
		gap := s - ego.S - (egoParams.Length+a.Length)/2
		if gap < -a.Length { // fully behind the ego
			continue
		}
		if gap < bestGap {
			bestGap = gap
			bestIdx = i
			bestS = s
		}
	}
	return bestIdx, bestS, bestGap
}

// leadSpeed projects the lead's velocity onto the road direction at its
// position, so a cut-in actor's lateral motion does not inflate the
// closing-speed estimate. s is the lead's station, already computed by
// selectLead from the identical position.
func (p *Planner) leadSpeed(a *world.Agent, s float64) float64 {
	tangent := p.Road.TangentAt(s)
	v := a.Velocity().Dot(tangent)
	if v < 0 {
		v = 0
	}
	return v
}

// idm is the Intelligent Driver Model acceleration.
func (p *Planner) idm(v, vLead, gap float64) float64 {
	c := &p.Cfg
	// math.Pow with an exact integer exponent reduces to binary
	// exponentiation — x⁴ is computed as (x²)², bit for bit — so the
	// two explicit multiplies below are the identical result without
	// the Pow call's unpacking overhead.
	r := v / max(c.DesiredSpeed, 0.1)
	r2 := r * r
	free := 1 - r2*r2
	if math.IsInf(gap, 1) {
		return c.MaxAccel * free
	}
	if gap <= 0.1 {
		return -c.MaxBrake
	}
	denom := p.twoSqrtAB
	if denom == 0 {
		denom = 2 * math.Sqrt(c.MaxAccel*c.ComfortBrake)
	}
	dv := v - vLead
	sStar := c.MinGap + max(0, v*c.TimeHeadway+v*dv/denom)
	a := c.MaxAccel * (free - (sStar/gap)*(sStar/gap))
	return max(-c.MaxBrake, a)
}

// requiredDecel returns the constant deceleration needed to slow from v
// to vLead within dist meters. Non-positive distances with a positive
// speed excess mean a collision is already unavoidable at any finite
// deceleration; a large sentinel is returned.
func requiredDecel(v, vLead, dist float64) float64 {
	if vLead < 0 {
		vLead = 0
	}
	if v <= vLead {
		return 0
	}
	if dist <= 0.1 {
		return 1e3
	}
	return (v*v - vLead*vLead) / (2 * dist)
}

// AEBActive exposes the latch for tests and telemetry.
func (p *Planner) AEBActive() bool { return p.aebActive }
