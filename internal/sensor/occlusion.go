package sensor

import (
	"repro/internal/geom"
	"repro/internal/world"
)

// Occluded reports whether the target agent is hidden from a sensor at
// the ego position by any of the other agents. The paper's Cut-out
// scenario depends on this: a static obstacle is invisible until the
// lead actor cuts out of the lane and "reveals" it.
//
// The model casts sight rays from the sensor to the target's center and
// to both side extremes of its bounding box; the target is occluded only
// if every ray is blocked by some other agent's footprint.
func Occluded(egoPos geom.Vec2, target world.Agent, others []world.Agent) bool {
	rays := sightRays(egoPos, target)
	for _, ray := range rays {
		blocked := false
		for _, o := range others {
			if o.ID == target.ID {
				continue
			}
			if segmentHitsOBB(ray, o.BBox()) {
				blocked = true
				break
			}
		}
		if !blocked {
			return false
		}
	}
	return true
}

// VisibleActors returns the actors the camera sees from the ego pose,
// honoring occlusion by the other actors in the scene.
func VisibleActors(c Camera, ego geom.Pose, actors []world.Agent) []world.Agent {
	var out []world.Agent
	for _, a := range actors {
		if !c.SeesAgent(ego, a) {
			continue
		}
		if Occluded(ego.Pos, a, actors) {
			continue
		}
		out = append(out, a)
	}
	return out
}

func sightRays(from geom.Vec2, target world.Agent) []geom.Segment {
	// Side extremes: corners of the box projected perpendicular to the
	// line of sight give the widest visual extent; using the box's left
	// and right mid-edge points is a good, cheap approximation.
	left := target.Pose.Pos.Add(target.Pose.Left().Scale(target.Width / 2))
	right := target.Pose.Pos.Sub(target.Pose.Left().Scale(target.Width / 2))
	return []geom.Segment{
		{A: from, B: target.Pose.Pos},
		{A: from, B: left},
		{A: from, B: right},
	}
}

func segmentHitsOBB(s geom.Segment, b geom.OBB) bool {
	if b.Contains(s.A) || b.Contains(s.B) {
		return true
	}
	c := b.Corners()
	for i := 0; i < 4; i++ {
		edge := geom.Segment{A: c[i], B: c[(i+1)%4]}
		if s.Intersects(edge) {
			return true
		}
	}
	return false
}
