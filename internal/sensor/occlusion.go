package sensor

import (
	"math"

	"repro/internal/geom"
	"repro/internal/world"
)

// Occluded reports whether the target agent is hidden from a sensor at
// the ego position by any of the other agents. The paper's Cut-out
// scenario depends on this: a static obstacle is invisible until the
// lead actor cuts out of the lane and "reveals" it.
//
// The model casts sight rays from the sensor to the target's center and
// to both side extremes of its bounding box; the target is occluded only
// if every ray is blocked by some other agent's footprint.
func Occluded(egoPos geom.Vec2, target world.Agent, others []world.Agent) bool {
	rays := sightRays(egoPos, target)
	for _, ray := range rays {
		blocked := false
		for _, o := range others {
			if o.ID == target.ID {
				continue
			}
			if segmentHitsOBB(ray, o.BBox()) {
				blocked = true
				break
			}
		}
		if !blocked {
			return false
		}
	}
	return true
}

// VisibleActors returns the actors the camera sees from the ego pose,
// honoring occlusion by the other actors in the scene.
func VisibleActors(c Camera, ego geom.Pose, actors []world.Agent) []world.Agent {
	return AppendVisible(nil, c, ego, actors)
}

// AppendVisible is VisibleActors appending into dst (reusing its
// backing array); the perception pipeline's per-frame hot path calls
// it with a scratch slice so frame processing allocates nothing, and a
// conservative pre-filter (cameraReject) skips the trigonometric cone
// test for actors that provably cannot be seen — the accepted set is
// exactly VisibleActors'.
func AppendVisible(dst []world.Agent, c Camera, ego geom.Pose, actors []world.Agent) []world.Agent {
	cone := NewFrameCone(c, ego)
	for _, a := range actors {
		if cone.CannotSee(a) {
			continue
		}
		if !c.SeesAgent(ego, a) {
			continue
		}
		if Occluded(ego.Pos, a, actors) {
			continue
		}
		dst = append(dst, a)
	}
	return dst
}

// FrameCone is a camera frozen at one ego pose for the duration of a
// frame, with the axis trigonometry precomputed once: the per-frame
// hot paths (visibility filtering, the perception miss sweep) consult
// its conservative pre-filter before paying for the exact cone test.
type FrameCone struct {
	Cam Camera
	Ego geom.Pose

	axX, axY float64 // unit camera axis in world coordinates
}

// NewFrameCone freezes the camera at an ego pose. One Sincos here
// replaces an atan2 per rejected agent.
func NewFrameCone(c Camera, ego geom.Pose) FrameCone {
	axY, axX := math.Sincos(ego.Heading + c.MountHeading)
	return FrameCone{Cam: c, Ego: ego, axX: axX, axY: axY}
}

// CannotSee conservatively reports that SeesAgent is certainly false
// for this agent; when it returns false the exact test must decide.
func (fc *FrameCone) CannotSee(a world.Agent) bool {
	return cameraReject(fc.Cam, fc.Ego, fc.axX, fc.axY, a)
}

// cameraReject reports that no salient point of the agent — center,
// bumpers, or bounding-box corners, all within its footprint radius
// bound of the center — can possibly pass SeesAgent for this camera.
// Two conservative bounds, both strictly looser than the exact test:
// the range bound (closest sampled point still beyond Range) and the
// half-plane bound (every sampled point strictly behind the camera
// plane while the half-FOV is under 90°).
func cameraReject(c Camera, ego geom.Pose, axX, axY float64, a world.Agent) bool {
	dx := a.Pose.Pos.X - ego.Pos.X
	dy := a.Pose.Pos.Y - ego.Pos.Y
	diag := world.FootprintRadiusBound(a.Length, a.Width)
	reach := c.Range + diag
	if dx*dx+dy*dy > reach*reach {
		return true
	}
	if c.FOV < math.Pi {
		// Behind the camera plane by more than the footprint: every
		// sampled point sits at over 90° off-axis, and 90° > FOV/2.
		if dx*axX+dy*axY < -diag {
			return true
		}
	}
	return false
}

func sightRays(from geom.Vec2, target world.Agent) [3]geom.Segment {
	// Side extremes: corners of the box projected perpendicular to the
	// line of sight give the widest visual extent; using the box's left
	// and right mid-edge points is a good, cheap approximation.
	left := target.Pose.Pos.Add(target.Pose.Left().Scale(target.Width / 2))
	right := target.Pose.Pos.Sub(target.Pose.Left().Scale(target.Width / 2))
	return [3]geom.Segment{
		{A: from, B: target.Pose.Pos},
		{A: from, B: left},
		{A: from, B: right},
	}
}

func segmentHitsOBB(s geom.Segment, b geom.OBB) bool {
	if b.Contains(s.A) || b.Contains(s.B) {
		return true
	}
	c := b.Corners()
	for i := 0; i < 4; i++ {
		edge := geom.Segment{A: c[i], B: c[(i+1)%4]}
		if s.Intersects(edge) {
			return true
		}
	}
	return false
}
