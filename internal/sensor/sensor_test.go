package sensor

import (
	"math"
	"testing"

	"repro/internal/geom"
	"repro/internal/units"
	"repro/internal/world"
)

func agentAt(id string, x, y float64) world.Agent {
	return world.Agent{
		ID:     id,
		Pose:   geom.Pose{Pos: geom.V(x, y)},
		Length: 4.6,
		Width:  1.9,
	}
}

func TestCameraSeesPoint(t *testing.T) {
	cam := Camera{Name: "front", MountHeading: 0, FOV: units.DegToRad(120), Range: 100}
	ego := geom.Pose{Pos: geom.V(0, 0), Heading: 0}
	cases := []struct {
		p    geom.Vec2
		want bool
	}{
		{geom.V(50, 0), true},    // dead ahead
		{geom.V(150, 0), false},  // beyond range
		{geom.V(10, 10), true},   // 45° left, inside ±60°
		{geom.V(1, 10), false},   // ~84° left, outside
		{geom.V(-10, 0), false},  // behind
		{geom.V(0, 0), true},     // coincident
		{geom.V(5, 8.65), true},  // ~60°, boundary (inside tolerance)
		{geom.V(5, -8.65), true}, // symmetric right boundary
	}
	for i, c := range cases {
		if got := cam.SeesPoint(ego, c.p); got != c.want {
			t.Errorf("case %d: SeesPoint(%v) = %v, want %v", i, c.p, got, c.want)
		}
	}
}

func TestCameraRotatesWithEgo(t *testing.T) {
	cam := Camera{Name: "front", MountHeading: 0, FOV: units.DegToRad(60), Range: 100}
	ego := geom.Pose{Pos: geom.V(0, 0), Heading: math.Pi / 2} // facing +Y
	if !cam.SeesPoint(ego, geom.V(0, 50)) {
		t.Error("rotated ego should see ahead (+Y)")
	}
	if cam.SeesPoint(ego, geom.V(50, 0)) {
		t.Error("rotated ego should not see +X in a 60° cone")
	}
}

func TestSideCameraMount(t *testing.T) {
	left := Camera{Name: Left, MountHeading: math.Pi / 2, FOV: units.DegToRad(120), Range: 80}
	right := Camera{Name: Right, MountHeading: -math.Pi / 2, FOV: units.DegToRad(120), Range: 80}
	ego := geom.Pose{Pos: geom.V(0, 0), Heading: 0}
	if !left.SeesPoint(ego, geom.V(0, 10)) {
		t.Error("left camera should see left")
	}
	if left.SeesPoint(ego, geom.V(0, -10)) {
		t.Error("left camera should not see right")
	}
	if !right.SeesPoint(ego, geom.V(0, -10)) {
		t.Error("right camera should see right")
	}
	if right.SeesPoint(ego, geom.V(0, 10)) {
		t.Error("right camera should not see left")
	}
}

func TestSeesAgentByCorner(t *testing.T) {
	cam := Camera{Name: "front", MountHeading: 0, FOV: units.DegToRad(60), Range: 100}
	ego := geom.Pose{Pos: geom.V(0, 0), Heading: 0}
	// Center slightly outside the cone, but the near corner pokes in.
	a := agentAt("a1", 10, 6.2)
	if !cam.SeesAgent(ego, a) {
		t.Error("agent corner should be visible")
	}
	far := agentAt("a2", 10, 30)
	if cam.SeesAgent(ego, far) {
		t.Error("distant lateral agent should be invisible")
	}
}

func TestDefaultRigComplete(t *testing.T) {
	rig := DefaultRig()
	if len(rig) != 5 {
		t.Fatalf("rig size = %d", len(rig))
	}
	for _, name := range []string{Front120, Front60, Left, Right, Rear} {
		if _, ok := rig.Camera(name); !ok {
			t.Errorf("missing camera %s", name)
		}
	}
	if _, ok := rig.Camera("nope"); ok {
		t.Error("phantom camera found")
	}
	names := rig.Names()
	if len(names) != 5 || names[0] != Front120 {
		t.Errorf("Names = %v", names)
	}
	analyzed := AnalyzedCameras()
	if len(analyzed) != 3 {
		t.Errorf("analyzed cameras = %v", analyzed)
	}
	for _, name := range analyzed {
		if _, ok := rig.Camera(name); !ok {
			t.Errorf("analyzed camera %s not in rig", name)
		}
	}
}

func TestRigVisible(t *testing.T) {
	rig := DefaultRig()
	ego := geom.Pose{Pos: geom.V(0, 0), Heading: 0}

	front := agentAt("front", 50, 0)
	seen := rig.Visible(ego, front)
	if !contains(seen, Front120) || !contains(seen, Front60) {
		t.Errorf("front actor seen by %v", seen)
	}
	if contains(seen, Rear) {
		t.Errorf("front actor seen by rear camera: %v", seen)
	}

	leftSide := agentAt("left", 0, 15)
	seen = rig.Visible(ego, leftSide)
	if !contains(seen, Left) || contains(seen, Right) {
		t.Errorf("left actor seen by %v", seen)
	}

	behind := agentAt("behind", -40, 0)
	seen = rig.Visible(ego, behind)
	if !contains(seen, Rear) || contains(seen, Front120) {
		t.Errorf("rear actor seen by %v", seen)
	}
}

func TestRigVisibleSet(t *testing.T) {
	rig := DefaultRig()
	ego := geom.Pose{Pos: geom.V(0, 0), Heading: 0}
	actors := []world.Agent{
		agentAt("f", 60, 0),
		agentAt("l", 5, 12),
		agentAt("r", 5, -12),
	}
	m := rig.VisibleSet(ego, actors)
	if !contains(m[Front120], "f") {
		t.Errorf("front120 sees %v", m[Front120])
	}
	if !contains(m[Left], "l") || contains(m[Left], "r") {
		t.Errorf("left sees %v", m[Left])
	}
	if !contains(m[Right], "r") || contains(m[Right], "l") {
		t.Errorf("right sees %v", m[Right])
	}
}

// An actor diagonally ahead-left near the FOV seam should appear in both
// the front and left cameras; Zhuyi's per-camera aggregation depends on
// overlapping FOVs behaving this way.
func TestFOVOverlap(t *testing.T) {
	rig := DefaultRig()
	ego := geom.Pose{Pos: geom.V(0, 0), Heading: 0}
	diag := agentAt("d", 10, 10)
	seen := rig.Visible(ego, diag)
	if !contains(seen, Front120) || !contains(seen, Left) {
		t.Errorf("diagonal actor seen by %v, want front120+left", seen)
	}
}

func contains(s []string, v string) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}
