package sensor

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/units"
	"repro/internal/world"
)

// The RigCones fast paths may only replace the Camera/Occluded exact
// tests because they decide identically on every input — the
// simulator's byte-identical-trace guarantee rides on it. These tests
// compare fast and exact on randomized scenes, including poses pinned
// to the cone boundaries where the tri-state must fall back.

func randomScene(rng *rand.Rand, n int) (geom.Pose, []world.Agent) {
	ego := geom.Pose{
		Pos:     geom.V((rng.Float64()-0.5)*50, (rng.Float64()-0.5)*50),
		Heading: (rng.Float64() - 0.5) * 7,
	}
	if rng.Intn(3) == 0 {
		ego.Heading = 0
	}
	agents := make([]world.Agent, n)
	for i := range agents {
		heading := (rng.Float64() - 0.5) * 7
		if rng.Intn(3) == 0 {
			heading = 0
		}
		dist := rng.Float64() * 300
		ang := (rng.Float64() - 0.5) * 2 * math.Pi
		agents[i] = world.Agent{
			ID:     string(rune('a' + i)),
			Pose:   geom.Pose{Pos: ego.Pos.Add(geom.FromAngle(ang).Scale(dist)), Heading: heading},
			Speed:  rng.Float64() * 40,
			Accel:  (rng.Float64() - 0.5) * 6,
			LatVel: (rng.Float64() - 0.5) * 2,
			Length: 1 + rng.Float64()*10,
			Width:  1 + rng.Float64()*3,
			Lane:   rng.Intn(3),
			Static: rng.Intn(5) == 0,
		}
	}
	return ego, agents
}

func frameOf(agents []world.Agent) *world.Frame {
	f := world.NewFrame(len(agents))
	for i, a := range agents {
		f.Set(i, a)
	}
	return f
}

func randomRig(rng *rand.Rand) Rig {
	rig := DefaultRig()
	// Add adversarial cones: wide (≥π, no wedge fast path), tiny, and
	// near-boundary FOVs.
	rig = append(rig,
		Camera{Name: "wide", MountHeading: 0.3, FOV: math.Pi + rng.Float64(), Range: 120},
		Camera{Name: "tiny", MountHeading: -0.2, FOV: units.DegToRad(2), Range: 300},
		Camera{Name: "nearpi", MountHeading: 1.1, FOV: math.Pi - 1e-12, Range: 90},
	)
	return rig
}

func TestRigConesMatchesExactVisibility(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for iter := 0; iter < 3000; iter++ {
		rig := randomRig(rng)
		ego, agents := randomScene(rng, 1+rng.Intn(5))
		f := frameOf(agents)
		rc := NewRigCones(rig)
		rc.Update(ego)
		oc := &OcclusionCache{}
		oc.Reset(len(agents))

		for ci, cam := range rig {
			for i, a := range agents {
				fast := rc.SeesAgentFrame(ci, f, i)
				exact := cam.SeesAgent(ego, a)
				if fast != exact {
					t.Fatalf("SeesAgentFrame(%s, agent %d) = %v, exact %v\nego %+v\nagent %+v", cam.Name, i, fast, exact, ego, a)
				}
				if got := rc.SeesAgentAt(ci, &a); got != exact {
					t.Fatalf("SeesAgentAt(%s, agent %d) = %v, exact %v", cam.Name, i, got, exact)
				}
			}

			gotIdx := rc.AppendVisibleIdx(nil, ci, f, oc)
			want := AppendVisible(nil, cam, ego, agents)
			if len(gotIdx) != len(want) {
				t.Fatalf("AppendVisibleIdx(%s): %d visible, exact %d", cam.Name, len(gotIdx), len(want))
			}
			for k, idx := range gotIdx {
				if agents[idx].ID != want[k].ID {
					t.Fatalf("AppendVisibleIdx(%s)[%d] = %s, exact %s", cam.Name, k, agents[idx].ID, want[k].ID)
				}
			}
		}

		for i, a := range agents {
			if got, want := OccludedFrame(ego.Pos, f, i, nil), Occluded(ego.Pos, a, agents); got != want {
				t.Fatalf("OccludedFrame(agent %d) = %v, exact %v", i, got, want)
			}
		}
	}
}

// TestRigConesBoundaryPoints pins sample points exactly on cone edges:
// the tri-state must classify them as uncertain (falling back to the
// exact test), never flipping the decision.
func TestRigConesBoundaryPoints(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for iter := 0; iter < 4000; iter++ {
		rig := randomRig(rng)
		ci := rng.Intn(len(rig))
		cam := rig[ci]
		ego := geom.Pose{Pos: geom.V((rng.Float64()-0.5)*20, (rng.Float64()-0.5)*20), Heading: (rng.Float64() - 0.5) * 6}
		rc := NewRigCones(rig)
		rc.Update(ego)

		// A point exactly at Range along a ray near the FOV edge, and a
		// point exactly on the FOV edge inside the range.
		edge := cam.FOV / 2 * (1 - 2*rng.Float64()*1e-15)
		if rng.Intn(2) == 0 {
			edge = -edge
		}
		dir := ego.Heading + cam.MountHeading + edge
		for _, dist := range []float64{cam.Range, cam.Range * (1 - 1e-16), cam.Range * rng.Float64(), 1e-9, 5e-10, 2e-9} {
			p := ego.Pos.Add(geom.FromAngle(dir).Scale(dist))
			a := world.Agent{ID: "x", Pose: geom.Pose{Pos: p}, Length: 1e-9, Width: 1e-9}
			f := frameOf([]world.Agent{a})
			if got, want := rc.SeesAgentFrame(ci, f, 0), cam.SeesAgent(ego, a); got != want {
				t.Fatalf("boundary: cam %s dist %v edge %v: fast %v exact %v", cam.Name, dist, edge, got, want)
			}
		}
	}
}
