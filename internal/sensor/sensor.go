// Package sensor models the AV's camera rig as field-of-view cones
// attached to the ego pose. The paper's vehicle carries five cameras —
// two front cameras (60° and 120° FOV), two side cameras, and a rear
// camera — and analyzes the 120° front camera plus the two side cameras.
// Zhuyi's per-camera aggregation (Equation 5) needs only FOV membership:
// which actors each camera can see.
package sensor

import (
	"math"

	"repro/internal/geom"
	"repro/internal/units"
	"repro/internal/world"
)

// Camera is one FOV cone. MountHeading is relative to the ego heading
// (0 = forward, +π/2 = left). FOV is the full opening angle.
type Camera struct {
	Name         string
	MountHeading float64 // rad, relative to ego heading
	FOV          float64 // rad, full angle
	Range        float64 // m
}

// SeesPoint reports whether the camera at the given ego pose sees the
// world point.
func (c Camera) SeesPoint(ego geom.Pose, p geom.Vec2) bool {
	d := p.Sub(ego.Pos)
	dist := d.Len()
	if dist > c.Range {
		return false
	}
	if dist < 1e-9 {
		return true
	}
	rel := units.NormalizeAngle(d.Angle() - ego.Heading - c.MountHeading)
	return math.Abs(rel) <= c.FOV/2
}

// SeesAgent reports whether any salient point of the agent's bounding
// box (center, bumpers, corners) is inside the camera cone. Sampling
// multiple points keeps long vehicles visible when only their tail
// crosses the cone edge.
func (c Camera) SeesAgent(ego geom.Pose, a world.Agent) bool {
	if c.SeesPoint(ego, a.Pose.Pos) {
		return true
	}
	if c.SeesPoint(ego, a.FrontBumper()) || c.SeesPoint(ego, a.RearBumper()) {
		return true
	}
	for _, corner := range a.BBox().Corners() {
		if c.SeesPoint(ego, corner) {
			return true
		}
	}
	return false
}

// Canonical camera names for the paper's five-camera rig.
const (
	Front120 = "front120"
	Front60  = "front60"
	Left     = "left"
	Right    = "right"
	Rear     = "rear"
)

// Rig is an ordered set of cameras.
type Rig []Camera

// DefaultRig returns the paper's five-camera arrangement: two front
// cameras (120° wide/medium range and 60° narrow/long range), two 120°
// side cameras, and a rear camera.
func DefaultRig() Rig {
	return Rig{
		{Name: Front120, MountHeading: 0, FOV: units.DegToRad(120), Range: 150},
		{Name: Front60, MountHeading: 0, FOV: units.DegToRad(60), Range: 250},
		{Name: Left, MountHeading: math.Pi / 2, FOV: units.DegToRad(120), Range: 80},
		{Name: Right, MountHeading: -math.Pi / 2, FOV: units.DegToRad(120), Range: 80},
		{Name: Rear, MountHeading: math.Pi, FOV: units.DegToRad(120), Range: 100},
	}
}

// AnalyzedCameras are the cameras the paper reports results for
// (Table 1's F_c1..F_c3 and Figures 4–6): the 120° front camera and the
// two side cameras.
func AnalyzedCameras() []string { return []string{Front120, Left, Right} }

// Camera returns the named camera.
func (r Rig) Camera(name string) (Camera, bool) {
	for _, c := range r {
		if c.Name == name {
			return c, true
		}
	}
	return Camera{}, false
}

// Names returns the camera names in rig order.
func (r Rig) Names() []string {
	names := make([]string, len(r))
	for i, c := range r {
		names[i] = c.Name
	}
	return names
}

// Visible returns the names of the cameras that can see the agent from
// the given ego pose.
func (r Rig) Visible(ego geom.Pose, a world.Agent) []string {
	var seen []string
	for _, c := range r {
		if c.SeesAgent(ego, a) {
			seen = append(seen, c.Name)
		}
	}
	return seen
}

// AppendSeenIDs appends the IDs of the agents the camera sees from the
// ego pose (FOV membership only — no occlusion) into dst, reusing its
// backing array. The frame-cone pre-filter skips the exact cone test
// for agents that provably cannot be seen; the accepted set is exactly
// the plain SeesAgent sweep's. Per-instant callers (the estimator's
// Eq. 5 loop) pass a scratch slice so the sweep allocates nothing.
func (c Camera) AppendSeenIDs(dst []string, ego geom.Pose, actors []world.Agent) []string {
	fc := NewFrameCone(c, ego)
	for i := range actors {
		if fc.CannotSee(actors[i]) || !c.SeesAgent(ego, actors[i]) {
			continue
		}
		dst = append(dst, actors[i].ID)
	}
	return dst
}

// VisibleSet returns, for each camera, the IDs of the agents it sees:
// the allocating convenience over AppendSeenIDs.
func (r Rig) VisibleSet(ego geom.Pose, actors []world.Agent) map[string][]string {
	m := make(map[string][]string, len(r))
	for _, c := range r {
		m[c.Name] = c.AppendSeenIDs(nil, ego, actors)
	}
	return m
}
