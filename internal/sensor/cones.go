package sensor

import (
	"math"

	"repro/internal/geom"
	"repro/internal/world"
)

// RigCones is a per-run precomputed view of a camera rig: the
// per-camera constants (mount trigonometry, cos of the half-FOV,
// conservative squared-range and cosine bounds) are computed once at
// construction, and Update rotates every camera axis to the current
// ego pose with a single shared SinCos per step instead of one
// math.Sincos per camera per frame (what NewFrameCone pays).
//
// Every predicate is exactly equivalent to the Camera methods it
// accelerates: the fast point test is a tri-state — certainly seen /
// certainly not / uncertain — whose certainty margins (relative 1e-9,
// absolute 1e-12, versus floating-point errors around 1e-15) are wide
// enough that the uncertain band safely brackets the exact test's
// decision boundary; uncertain points fall through to the unmodified
// Camera.SeesPoint. sensor_equiv_test.go asserts the equivalence on
// randomized scenes.
type RigCones struct {
	rig  Rig
	cams []coneStatic

	// Per-camera world-frame cone axis for the current ego pose.
	axX, axY []float64

	ego     geom.Pose
	haveEgo bool
}

// coneStatic is the ego-independent precomputation for one camera.
type coneStatic struct {
	cam        Camera
	sinM, cosM float64 // Sincos(MountHeading)
	cosHalf    float64 // cos(FOV/2)
	halfPlane  bool    // FOV < π: the behind-the-plane reject is valid
	wedge      bool    // FOV ≤ π (cosHalf ≥ 0): squared wedge tests valid

	rngInSq, rngOutSq float64 // certainly-within / certainly-beyond Range²
	cosInSq, cosOutSq float64 // squared certainty bounds on cos(angle off axis)
	cosOut            float64
}

const (
	coneRelMargin = 1e-9
	coneAbsMargin = 1e-12
	// tinySq guards Camera.SeesPoint's dist < 1e-9 always-visible
	// special case: closer points are left to the exact test.
	coneTinySq = 4e-18
)

// NewRigCones precomputes the rig's cone constants for a run.
func NewRigCones(rig Rig) *RigCones {
	rc := &RigCones{
		rig:  rig,
		cams: make([]coneStatic, len(rig)),
		axX:  make([]float64, len(rig)),
		axY:  make([]float64, len(rig)),
	}
	for i, c := range rig {
		sinM, cosM := math.Sincos(c.MountHeading)
		cosHalf := math.Cos(c.FOV / 2)
		r2 := c.Range * c.Range
		cosIn := cosHalf*(1+coneRelMargin) + coneAbsMargin
		cosOut := cosHalf*(1-coneRelMargin) - coneAbsMargin
		rc.cams[i] = coneStatic{
			cam:       c,
			sinM:      sinM,
			cosM:      cosM,
			cosHalf:   cosHalf,
			halfPlane: c.FOV < math.Pi,
			wedge:     cosHalf >= 0,
			rngInSq:   r2 * (1 - coneRelMargin),
			rngOutSq:  r2 * (1 + coneRelMargin),
			cosInSq:   cosIn * cosIn,
			cosOutSq:  cosOut * cosOut,
			cosOut:    cosOut,
		}
	}
	return rc
}

// Rig returns the rig the table was built for.
func (rc *RigCones) Rig() Rig { return rc.rig }

// Update rotates the camera axes to the given ego pose. It memoizes
// on pose equality, so all cameras — and, under lockstep batching, all
// variants sharing the instant — pay one SinCos per step.
func (rc *RigCones) Update(ego geom.Pose) {
	if rc.haveEgo && rc.ego == ego {
		return
	}
	rc.ego = ego
	rc.haveEgo = true
	sinH, cosH := geom.SinCos(ego.Heading)
	for i := range rc.cams {
		cs := &rc.cams[i]
		// Angle-addition instead of Sincos(heading+mount); the few-ulp
		// difference from NewFrameCone's axis is absorbed by the
		// conservative margins (the axis only feeds certainty tests).
		rc.axX[i] = cosH*cs.cosM - sinH*cs.sinM
		rc.axY[i] = sinH*cs.cosM + cosH*cs.sinM
	}
}

// seesPointTri classifies a world point against camera ci's cone:
// +1 certainly visible, -1 certainly not, 0 undecided (caller must run
// the exact Camera.SeesPoint).
func (rc *RigCones) seesPointTri(ci int, px, py float64) int {
	cs := &rc.cams[ci]
	dx := px - rc.ego.Pos.X
	dy := py - rc.ego.Pos.Y
	d2 := dx*dx + dy*dy
	if d2 > cs.rngOutSq {
		return -1
	}
	if d2 < coneTinySq || d2 > cs.rngInSq || !cs.wedge {
		return 0
	}
	t := dx*rc.axX[ci] + dy*rc.axY[ci]
	if t >= 0 {
		t2 := t * t
		if t2 >= d2*cs.cosInSq {
			return 1
		}
		if cs.cosOut > 0 && t2 <= d2*cs.cosOutSq {
			return -1
		}
		return 0
	}
	// Behind the 90° plane; out unless the FOV reaches (within margin) π.
	if cs.cosHalf > coneRelMargin {
		return -1
	}
	return 0
}

// seesPoint resolves the tri-state with the exact fallback.
func (rc *RigCones) seesPoint(ci int, px, py float64) bool {
	switch rc.seesPointTri(ci, px, py) {
	case 1:
		return true
	case -1:
		return false
	}
	return rc.cams[ci].cam.SeesPoint(rc.ego, geom.Vec2{X: px, Y: py})
}

// rejectAgent conservatively reports that no sampled point of an agent
// at (cx,cy) with the given footprint radius bound can pass the cone
// test — cameraReject on the precomputed axis.
func (rc *RigCones) rejectAgent(ci int, cx, cy, radius float64) bool {
	cs := &rc.cams[ci]
	dx := cx - rc.ego.Pos.X
	dy := cy - rc.ego.Pos.Y
	reach := cs.cam.Range + radius
	if dx*dx+dy*dy > reach*reach {
		return true
	}
	if cs.halfPlane && dx*rc.axX[ci]+dy*rc.axY[ci] < -radius {
		return true
	}
	return false
}

// SeesAgentFrame reports whether camera ci sees frame agent i —
// exactly Camera.SeesAgent on the materialized agent, via the cached
// trigonometry and the tri-state point tests.
func (rc *RigCones) SeesAgentFrame(ci int, f *world.Frame, i int) bool {
	cx, cy := f.X[i], f.Y[i]
	if rc.rejectAgent(ci, cx, cy, f.Radius[i]) {
		return false
	}
	return rc.seesSamples(ci, cx, cy, f.SinH[i], f.CosH[i], f.Length[i], &f.Quad(i).C)
}

// SeesAgentAt reports whether camera ci sees the agent (typically a
// coasted track estimate, not part of the ground-truth frame) —
// exactly CannotSee-prefiltered Camera.SeesAgent.
func (rc *RigCones) SeesAgentAt(ci int, a *world.Agent) bool {
	radius := world.FootprintRadiusBound(a.Length, a.Width)
	cx, cy := a.Pose.Pos.X, a.Pose.Pos.Y
	if rc.rejectAgent(ci, cx, cy, radius) {
		return false
	}
	sin, cos := geom.SinCos(a.Pose.Heading)
	q := geom.MakeQuadTrig(a.BBox(), sin, cos)
	return rc.seesSamples(ci, cx, cy, sin, cos, a.Length, &q.C)
}

// seesSamples runs the any-point cone membership over the agent's
// salient points (center, bumpers, corners — SeesAgent's sample set,
// computed with the identical arithmetic).
func (rc *RigCones) seesSamples(ci int, cx, cy, sin, cos, length float64, corners *[4]geom.Vec2) bool {
	if rc.seesPoint(ci, cx, cy) {
		return true
	}
	hl := length / 2
	bx, by := cos*hl, sin*hl
	if rc.seesPoint(ci, cx+bx, cy+by) || rc.seesPoint(ci, cx-bx, cy-by) {
		return true
	}
	for k := 0; k < 4; k++ {
		if rc.seesPoint(ci, corners[k].X, corners[k].Y) {
			return true
		}
	}
	return false
}

// OcclusionCache memoizes per-actor occlusion for one instant.
// Occlusion is camera-independent — a function of the ego position and
// the ground-truth scene — so one computation serves every camera of
// the rig (and, under lockstep batching, every variant sharing the
// instant).
type OcclusionCache struct {
	state []int8 // 0 unknown, 1 occluded, 2 clear
}

// Reset invalidates the cache for a new instant with n actors.
func (oc *OcclusionCache) Reset(n int) {
	if cap(oc.state) < n {
		oc.state = make([]int8, n)
		return
	}
	oc.state = oc.state[:n]
	for i := range oc.state {
		oc.state[i] = 0
	}
}

// OccludedFrame reports whether frame agent i is occluded from the ego
// position by the other frame agents — exactly Occluded on the
// materialized agents. oc may be nil to skip memoization.
func OccludedFrame(egoPos geom.Vec2, f *world.Frame, i int, oc *OcclusionCache) bool {
	if oc != nil && oc.state[i] != 0 {
		return oc.state[i] == 1
	}
	occ := occludedFrame(egoPos, f, i)
	if oc != nil {
		if occ {
			oc.state[i] = 1
		} else {
			oc.state[i] = 2
		}
	}
	return occ
}

func occludedFrame(egoPos geom.Vec2, f *world.Frame, i int) bool {
	// Sight rays to the center and both side mid-edges (sightRays on
	// the cached trigonometry).
	cx, cy := f.X[i], f.Y[i]
	hw := f.Width[i] / 2
	qx, qy := (-f.SinH[i])*hw, f.CosH[i]*hw
	rays := [3]geom.Segment{
		{A: egoPos, B: geom.Vec2{X: cx, Y: cy}},
		{A: egoPos, B: geom.Vec2{X: cx + qx, Y: cy + qy}},
		{A: egoPos, B: geom.Vec2{X: cx - qx, Y: cy - qy}},
	}
	for _, ray := range rays {
		blocked := false
		for j := 0; j < f.Len(); j++ {
			if j == i {
				continue
			}
			// Bounding-circle prefilter: the footprint lies within
			// Radius of the center, so a ray farther than that cannot
			// touch it; borderline cases fall through to the exact test.
			r := f.Radius[j]
			if ray.DistSqToPoint(geom.Vec2{X: f.X[j], Y: f.Y[j]}) > r*r {
				continue
			}
			if f.Quad(j).HitBy(ray) {
				blocked = true
				break
			}
		}
		if !blocked {
			return false
		}
	}
	return true
}

// AppendVisibleIdx appends the frame indices of the actors camera ci
// sees (cone membership plus occlusion), in frame order — exactly the
// set and order AppendVisible produces on the materialized agents.
func (rc *RigCones) AppendVisibleIdx(dst []int, ci int, f *world.Frame, oc *OcclusionCache) []int {
	for i := 0; i < f.Len(); i++ {
		if !rc.SeesAgentFrame(ci, f, i) {
			continue
		}
		if OccludedFrame(rc.ego.Pos, f, i, oc) {
			continue
		}
		dst = append(dst, i)
	}
	return dst
}
