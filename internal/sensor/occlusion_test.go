package sensor

import (
	"testing"

	"repro/internal/geom"
	"repro/internal/units"
	"repro/internal/world"
)

func TestOccludedByLeadVehicle(t *testing.T) {
	ego := geom.V(0, 0)
	// Lead truck directly ahead at 30 m, obstacle at 60 m in the same lane.
	lead := world.Agent{ID: "lead", Pose: geom.Pose{Pos: geom.V(30, 0)}, Length: 8, Width: 2.5}
	obstacle := world.Agent{ID: "obs", Pose: geom.Pose{Pos: geom.V(60, 0)}, Length: 4, Width: 1.9}
	if !Occluded(ego, obstacle, []world.Agent{lead, obstacle}) {
		t.Error("obstacle behind lead should be occluded")
	}
	// Move the lead to the adjacent lane: line of sight clears.
	lead.Pose.Pos = geom.V(30, 3.5)
	if Occluded(ego, obstacle, []world.Agent{lead, obstacle}) {
		t.Error("obstacle should be revealed after lead cut-out")
	}
}

func TestPartialOcclusionStillVisible(t *testing.T) {
	ego := geom.V(0, 0)
	// Narrow occluder covers the center ray but not the side extremes of a
	// wide target.
	occluder := world.Agent{ID: "occ", Pose: geom.Pose{Pos: geom.V(20, 0)}, Length: 1, Width: 0.4}
	target := world.Agent{ID: "tgt", Pose: geom.Pose{Pos: geom.V(40, 0)}, Length: 4.6, Width: 2.4}
	if Occluded(ego, target, []world.Agent{occluder, target}) {
		t.Error("partially visible target reported occluded")
	}
}

func TestOcclusionIgnoresTargetItself(t *testing.T) {
	ego := geom.V(0, 0)
	target := world.Agent{ID: "tgt", Pose: geom.Pose{Pos: geom.V(40, 0)}, Length: 4.6, Width: 1.9}
	if Occluded(ego, target, []world.Agent{target}) {
		t.Error("target occluded by itself")
	}
}

func TestVisibleActorsHonorsOcclusion(t *testing.T) {
	cam := Camera{Name: Front120, MountHeading: 0, FOV: units.DegToRad(120), Range: 150}
	ego := geom.Pose{Pos: geom.V(0, 0), Heading: 0}
	lead := world.Agent{ID: "lead", Pose: geom.Pose{Pos: geom.V(30, 0)}, Length: 8, Width: 2.5}
	obstacle := world.Agent{ID: "obs", Pose: geom.Pose{Pos: geom.V(60, 0)}, Length: 4, Width: 1.9}
	actors := []world.Agent{lead, obstacle}

	vis := VisibleActors(cam, ego, actors)
	if len(vis) != 1 || vis[0].ID != "lead" {
		t.Errorf("visible = %v", ids(vis))
	}

	// After the lead cuts out, both are visible.
	actors[0].Pose.Pos = geom.V(30, 3.5)
	vis = VisibleActors(cam, ego, actors)
	if len(vis) != 2 {
		t.Errorf("after cut-out visible = %v", ids(vis))
	}
}

func TestVisibleActorsRespectsFOV(t *testing.T) {
	cam := Camera{Name: Front60, MountHeading: 0, FOV: units.DegToRad(60), Range: 100}
	ego := geom.Pose{Pos: geom.V(0, 0), Heading: 0}
	behind := world.Agent{ID: "b", Pose: geom.Pose{Pos: geom.V(-20, 0)}, Length: 4.6, Width: 1.9}
	if vis := VisibleActors(cam, ego, []world.Agent{behind}); len(vis) != 0 {
		t.Errorf("behind actor visible: %v", ids(vis))
	}
}

func ids(agents []world.Agent) []string {
	var out []string
	for _, a := range agents {
		out = append(out, a.ID)
	}
	return out
}
