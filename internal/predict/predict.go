// Package predict provides the trajectory predictors that feed Zhuyi's
// Equation 4 aggregation. The paper leverages existing prediction
// research (MultiPath, PredictionNet); this package substitutes
// kinematic predictors with the same interface — a set T of timed
// trajectories with probabilities per actor:
//
//   - ConstantVelocity and ConstantAccel: single-hypothesis baselines;
//   - LaneFollow: follows the lane tangent while damping any lateral
//     motion back to the lane center;
//   - MultiHypothesis: a maneuver-based multi-modal predictor
//     (keep-speed, brake, accelerate, continue-lane-change) with
//     probability weights, matching the interface of the DNN predictors
//     the paper builds on.
package predict

import (
	"math"

	"repro/internal/geom"
	"repro/internal/road"
	"repro/internal/world"
)

// Predictor produces the predicted trajectory set T for an actor,
// starting from its current (perceived) state at time now.
type Predictor interface {
	Predict(a world.Agent, now float64) []world.Trajectory
}

// AppendPredictor is implemented by predictors that can emit their
// trajectory set into caller-owned storage: trajectories are appended
// to dst and their Points are carved out of buf, so a caller that
// reuses both slices across calls predicts without allocating once
// steady-state capacity is reached. The serving tier's pooled /v1/rate
// path depends on this.
type AppendPredictor interface {
	AppendPrediction(dst []world.Trajectory, buf []world.TrajectoryPoint, a world.Agent, now float64) ([]world.Trajectory, []world.TrajectoryPoint)
}

// sampleCount returns the number of samples for a horizon and step.
func sampleCount(horizon, dt float64) int {
	if dt <= 0 {
		dt = 0.1
	}
	n := int(math.Ceil(horizon/dt)) + 1
	if n < 2 {
		n = 2
	}
	return n
}

// ConstantVelocity extrapolates the current velocity vector.
type ConstantVelocity struct {
	Horizon float64 // s
	Dt      float64 // s
}

// Predict implements Predictor.
func (p ConstantVelocity) Predict(a world.Agent, now float64) []world.Trajectory {
	n := sampleCount(p.Horizon, p.Dt)
	pts := make([]world.TrajectoryPoint, n)
	vel := a.Velocity()
	for i := 0; i < n; i++ {
		t := float64(i) * p.Dt
		pts[i] = world.TrajectoryPoint{
			T:       now + t,
			Pos:     a.Pose.Pos.Add(vel.Scale(t)),
			Heading: a.Pose.Heading,
			Speed:   a.Speed,
			Accel:   0,
		}
	}
	return []world.Trajectory{{ActorID: a.ID, Prob: 1, Points: pts}}
}

// ConstantAccel extrapolates with the current longitudinal acceleration,
// clamping speed at zero (braking actors stop and stay stopped).
type ConstantAccel struct {
	Horizon float64
	Dt      float64
}

// Predict implements Predictor.
func (p ConstantAccel) Predict(a world.Agent, now float64) []world.Trajectory {
	return []world.Trajectory{accelProfile(a, now, p.Horizon, p.Dt, a.Accel, 1)}
}

// AppendPrediction implements AppendPredictor.
func (p ConstantAccel) AppendPrediction(dst []world.Trajectory, buf []world.TrajectoryPoint, a world.Agent, now float64) ([]world.Trajectory, []world.TrajectoryPoint) {
	return appendAccelProfile(dst, buf, a, now, p.Horizon, p.Dt, a.Accel, 1)
}

// accelProfile integrates a straight-line profile with constant
// longitudinal acceleration, preserving any current lateral velocity.
func accelProfile(a world.Agent, now, horizon, dt, accel, prob float64) world.Trajectory {
	dst, _ := appendAccelProfile(nil, nil, a, now, horizon, dt, accel, prob)
	return dst[0]
}

// appendAccelProfile is accelProfile into caller-owned storage: the
// trajectory's Points are carved out of buf (capacity-limited so later
// carves cannot alias them) and the trajectory is appended to dst.
func appendAccelProfile(dst []world.Trajectory, buf []world.TrajectoryPoint, a world.Agent, now, horizon, dt, accel, prob float64) ([]world.Trajectory, []world.TrajectoryPoint) {
	n := sampleCount(horizon, dt)
	start := len(buf)
	dir := geom.FromAngle(a.Pose.Heading)
	lat := dir.Perp().Scale(a.LatVel)
	pos := a.Pose.Pos
	speed := a.Speed
	for i := 0; i < n; i++ {
		pt := world.TrajectoryPoint{T: now + float64(i)*dt, Pos: pos, Heading: a.Pose.Heading, Speed: speed, Accel: accel}
		if speed <= 0 && accel <= 0 {
			pt.Accel = 0
		}
		buf = append(buf, pt)
		// Integrate one step.
		v2 := speed + accel*dt
		if v2 < 0 {
			v2 = 0
		}
		pos = pos.Add(dir.Scale((speed + v2) / 2 * dt)).Add(lat.Scale(dt))
		speed = v2
	}
	pts := buf[start:len(buf):len(buf)]
	return append(dst, world.Trajectory{ActorID: a.ID, Prob: prob, Points: pts}), buf
}

// LaneFollow predicts motion along the road: the actor keeps its speed
// along the lane tangent while its lateral offset relaxes to the nearest
// lane center with time constant Tau.
type LaneFollow struct {
	Road    *road.Road
	Horizon float64
	Dt      float64
	Tau     float64 // lateral relaxation time constant, s (default 1.5)
}

// Predict implements Predictor.
func (p LaneFollow) Predict(a world.Agent, now float64) []world.Trajectory {
	tau := p.Tau
	if tau <= 0 {
		tau = 1.5
	}
	n := sampleCount(p.Horizon, p.Dt)
	pts := make([]world.TrajectoryPoint, n)
	s, d := p.Road.Frenet(a.Pose.Pos)
	targetD := p.Road.LaneCenterOffset(p.Road.LaneAt(d + a.LatVel*tau))
	latV := a.LatVel
	for i := 0; i < n; i++ {
		pose := p.Road.PoseAtOffset(s, d)
		pts[i] = world.TrajectoryPoint{T: now + float64(i)*p.Dt, Pos: pose.Pos, Heading: pose.Heading, Speed: a.Speed, Accel: 0}
		s += a.Speed * p.Dt
		// First-order relaxation of the offset toward the target lane.
		d += latV * p.Dt
		latV += ((targetD-d)/tau - latV) / tau * p.Dt
	}
	return []world.Trajectory{{ActorID: a.ID, Prob: 1, Points: pts}}
}

// MultiHypothesis emits a probability-weighted maneuver set:
// keep-speed, brake (comfortable), hard-brake, and accelerate, each as a
// straight-line profile from the current state; a lane-change
// continuation is implied by preserving the current lateral velocity.
// Probabilities shift toward braking hypotheses when the actor is
// already decelerating.
type MultiHypothesis struct {
	Horizon float64
	Dt      float64
}

type hypo struct {
	accel float64
	prob  float64
}

// hypotheses returns the fixed maneuver table for the actor's current
// longitudinal regime. A value array, so callers stay allocation-free.
func (p MultiHypothesis) hypotheses(a world.Agent) [4]hypo {
	switch {
	case a.Accel < -0.5: // already braking: likely keeps or deepens braking
		return [4]hypo{
			{a.Accel, 0.45},
			{a.Accel - 2, 0.25},
			{0, 0.20},
			{1.0, 0.10},
		}
	case a.Accel > 0.5: // accelerating
		return [4]hypo{
			{a.Accel, 0.45},
			{0, 0.35},
			{-2.5, 0.15},
			{-6, 0.05},
		}
	default: // cruising
		return [4]hypo{
			{0, 0.55},
			{-2.5, 0.20},
			{1.0, 0.15},
			{-6, 0.10},
		}
	}
}

// Predict implements Predictor.
func (p MultiHypothesis) Predict(a world.Agent, now float64) []world.Trajectory {
	hs := p.hypotheses(a)
	out := make([]world.Trajectory, 0, len(hs))
	for _, h := range hs {
		out = append(out, accelProfile(a, now, p.Horizon, p.Dt, h.accel, h.prob))
	}
	return out
}

// AppendPrediction implements AppendPredictor.
func (p MultiHypothesis) AppendPrediction(dst []world.Trajectory, buf []world.TrajectoryPoint, a world.Agent, now float64) ([]world.Trajectory, []world.TrajectoryPoint) {
	hs := p.hypotheses(a)
	for _, h := range hs {
		dst, buf = appendAccelProfile(dst, buf, a, now, p.Horizon, p.Dt, h.accel, h.prob)
	}
	return dst, buf
}

// Static returns a single stationary trajectory for static obstacles.
type Static struct {
	Horizon float64
	Dt      float64
}

// Predict implements Predictor.
func (p Static) Predict(a world.Agent, now float64) []world.Trajectory {
	dst, _ := p.AppendPrediction(nil, nil, a, now)
	return dst
}

// AppendPrediction implements AppendPredictor.
func (p Static) AppendPrediction(dst []world.Trajectory, buf []world.TrajectoryPoint, a world.Agent, now float64) ([]world.Trajectory, []world.TrajectoryPoint) {
	n := sampleCount(p.Horizon, p.Dt)
	start := len(buf)
	for i := 0; i < n; i++ {
		buf = append(buf, world.TrajectoryPoint{T: now + float64(i)*p.Dt, Pos: a.Pose.Pos, Heading: a.Pose.Heading})
	}
	pts := buf[start:len(buf):len(buf)]
	return append(dst, world.Trajectory{ActorID: a.ID, Prob: 1, Points: pts}), buf
}

// ForAgent picks a sensible predictor output for the agent: Static for
// static agents, the provided predictor otherwise.
func ForAgent(p Predictor, a world.Agent, now, horizon, dt float64) []world.Trajectory {
	if a.Static || a.Speed < 0.3 {
		return Static{Horizon: horizon, Dt: dt}.Predict(a, now)
	}
	return p.Predict(a, now)
}

// AppendForAgent is ForAgent into caller-owned storage. Predictors
// that implement AppendPredictor emit without allocating (buf and dst
// grow amortized); others fall back to Predict and copy, preserving
// semantics at the old allocation cost.
func AppendForAgent(p Predictor, dst []world.Trajectory, buf []world.TrajectoryPoint, a world.Agent, now, horizon, dt float64) ([]world.Trajectory, []world.TrajectoryPoint) {
	if a.Static || a.Speed < 0.3 {
		return Static{Horizon: horizon, Dt: dt}.AppendPrediction(dst, buf, a, now)
	}
	if ap, ok := p.(AppendPredictor); ok {
		return ap.AppendPrediction(dst, buf, a, now)
	}
	return append(dst, p.Predict(a, now)...), buf
}
