package predict

import (
	"math"
	"testing"

	"repro/internal/geom"
	"repro/internal/road"
	"repro/internal/world"
)

func movingAgent(speed, accel float64) world.Agent {
	return world.Agent{
		ID:     "a1",
		Pose:   geom.Pose{Pos: geom.V(50, 0), Heading: 0},
		Speed:  speed,
		Accel:  accel,
		Length: 4.6,
		Width:  1.9,
	}
}

func TestConstantVelocity(t *testing.T) {
	p := ConstantVelocity{Horizon: 5, Dt: 0.1}
	trs := p.Predict(movingAgent(10, 0), 2)
	if len(trs) != 1 || trs[0].Prob != 1 {
		t.Fatalf("trajectories = %d", len(trs))
	}
	tr := trs[0]
	if tr.Start() != 2 {
		t.Errorf("start = %v", tr.Start())
	}
	at := tr.At(4) // 2 s in
	if math.Abs(at.Pos.X-70) > 1e-9 {
		t.Errorf("pos at t=4: %v", at.Pos)
	}
	if at.Speed != 10 {
		t.Errorf("speed = %v", at.Speed)
	}
	if err := tr.Validate(); err != nil {
		t.Error(err)
	}
}

func TestConstantAccelBrakesToStop(t *testing.T) {
	p := ConstantAccel{Horizon: 8, Dt: 0.05}
	trs := p.Predict(movingAgent(10, -5), 0)
	tr := trs[0]
	// Stops after 2 s, having traveled 10 m; stays stopped.
	at := tr.At(2.0)
	if math.Abs(at.Speed) > 0.26 {
		t.Errorf("speed at stop time = %v", at.Speed)
	}
	end := tr.At(8)
	if math.Abs(end.Pos.X-60) > 0.3 {
		t.Errorf("final pos = %v, want ~60", end.Pos.X)
	}
	if end.Speed != 0 {
		t.Errorf("final speed = %v", end.Speed)
	}
}

func TestConstantAccelSpeedNeverNegative(t *testing.T) {
	p := ConstantAccel{Horizon: 10, Dt: 0.1}
	trs := p.Predict(movingAgent(5, -8), 0)
	for _, pt := range trs[0].Points {
		if pt.Speed < 0 {
			t.Fatalf("negative speed %v at t=%v", pt.Speed, pt.T)
		}
	}
}

func TestLaneFollowStraightRoad(t *testing.T) {
	r := road.NewStraight(3, 2000)
	p := LaneFollow{Road: r, Horizon: 5, Dt: 0.1}
	a := movingAgent(20, 0)
	a.Pose.Pos = geom.V(100, 3.5) // centered in lane 1
	trs := p.Predict(a, 0)
	tr := trs[0]
	at := tr.At(3)
	if math.Abs(at.Pos.X-160) > 1e-6 || math.Abs(at.Pos.Y-3.5) > 1e-6 {
		t.Errorf("pos at t=3: %v", at.Pos)
	}
}

func TestLaneFollowRelaxesToLaneCenter(t *testing.T) {
	r := road.NewStraight(3, 2000)
	p := LaneFollow{Road: r, Horizon: 8, Dt: 0.05, Tau: 1.0}
	a := movingAgent(20, 0)
	a.Pose.Pos = geom.V(100, 2.8) // offset within lane 1's bucket
	trs := p.Predict(a, 0)
	end := trs[0].Points[len(trs[0].Points)-1]
	if math.Abs(end.Pos.Y-3.5) > 0.3 {
		t.Errorf("final lateral = %v, want ~3.5", end.Pos.Y)
	}
}

func TestLaneFollowCurvedRoad(t *testing.T) {
	r := road.NewCurved(3, 0, 200, 600)
	p := LaneFollow{Road: r, Horizon: 5, Dt: 0.1}
	a := movingAgent(20, 0)
	a.Pose.Pos = r.PoseAt(0, 50).Pos
	trs := p.Predict(a, 0)
	// The predicted path must stay on the lane: its offset from lane 0
	// center stays small even as the road curves.
	for _, pt := range trs[0].Points {
		_, d := r.Frenet(pt.Pos)
		if math.Abs(d) > 0.5 {
			t.Fatalf("predicted point strays %v m off lane center", d)
		}
	}
}

func TestMultiHypothesisProbabilitiesSumToOne(t *testing.T) {
	p := MultiHypothesis{Horizon: 6, Dt: 0.1}
	for _, accel := range []float64{0, -3, 2} {
		trs := p.Predict(movingAgent(15, accel), 0)
		if len(trs) != 4 {
			t.Fatalf("hypothesis count = %d", len(trs))
		}
		sum := 0.0
		for _, tr := range trs {
			sum += tr.Prob
			if err := tr.Validate(); err != nil {
				t.Error(err)
			}
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("accel %v: prob sum = %v", accel, sum)
		}
	}
}

func TestMultiHypothesisBrakingBias(t *testing.T) {
	p := MultiHypothesis{Horizon: 6, Dt: 0.1}
	braking := p.Predict(movingAgent(15, -3), 0)
	// The most likely hypothesis of a braking actor continues braking.
	best := braking[0]
	for _, tr := range braking[1:] {
		if tr.Prob > best.Prob {
			best = tr
		}
	}
	endSpeed := best.Points[len(best.Points)-1].Speed
	if endSpeed >= 15 {
		t.Errorf("most likely hypothesis does not slow down: end speed %v", endSpeed)
	}
}

func TestStaticPredictor(t *testing.T) {
	obs := world.Agent{ID: "obs", Pose: geom.Pose{Pos: geom.V(80, 0)}, Length: 4, Width: 2, Static: true}
	trs := Static{Horizon: 5, Dt: 0.5}.Predict(obs, 1)
	tr := trs[0]
	if tr.At(3).Pos != obs.Pose.Pos {
		t.Errorf("static obstacle moved: %v", tr.At(3).Pos)
	}
	if tr.At(3).Speed != 0 {
		t.Errorf("static obstacle speed: %v", tr.At(3).Speed)
	}
}

func TestForAgentDispatch(t *testing.T) {
	cv := ConstantVelocity{Horizon: 5, Dt: 0.1}
	obs := world.Agent{ID: "obs", Pose: geom.Pose{Pos: geom.V(80, 0)}, Length: 4, Width: 2, Static: true}
	trs := ForAgent(cv, obs, 0, 5, 0.1)
	if trs[0].At(5).Pos != obs.Pose.Pos {
		t.Error("static agent not dispatched to Static predictor")
	}
	mover := movingAgent(10, 0)
	trs = ForAgent(cv, mover, 0, 5, 0.1)
	if math.Abs(trs[0].At(5).Pos.X-100) > 1e-9 {
		t.Error("moving agent not dispatched to the provided predictor")
	}
}

func TestSampleCountEdgeCases(t *testing.T) {
	if n := sampleCount(0, 0.1); n < 2 {
		t.Errorf("sampleCount(0) = %d", n)
	}
	if n := sampleCount(1, 0); n < 2 {
		t.Errorf("sampleCount with zero dt = %d", n)
	}
}
