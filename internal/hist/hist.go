// Package hist provides fixed-footprint, lock-free latency histograms.
//
// A Histogram is a set of log-bucketed counter arrays sharded across
// independent cache-line groups: recording is one or two atomic adds,
// never a lock, never an allocation. Buckets are logarithmic with
// linear sub-buckets (8 per octave), bounding the relative error of any
// reported quantile at 12.5% while keeping the whole structure a few
// tens of kilobytes regardless of how many observations it absorbs.
//
// The serving tier keeps one Histogram per route (see
// internal/server); cmd/loadtest reuses the same implementation on the
// client side so server-reported and driver-reported quantiles are
// bucketed identically.
package hist

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

const (
	subBits = 3
	// subBuckets is the number of linear sub-buckets per power of two.
	subBuckets = 1 << subBits
	// numBuckets covers the full uint64 nanosecond range:
	// subBuckets exact buckets below 2^subBits plus subBuckets per
	// remaining octave.
	numBuckets = subBuckets + (64-subBits)*subBuckets

	// NumShards is the number of independent counter shards per
	// histogram. Must be a power of two.
	NumShards = 8
)

// shard is one independent group of counters. Writers touch exactly one
// shard per observation, so unrelated goroutines with distinct shard
// hints never contend on the same cache lines.
type shard struct {
	counts [numBuckets]atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64
	max    atomic.Uint64
	_      [64]byte
}

// Histogram is a lock-free, log-bucketed histogram of durations.
// The zero value is ready to use. Histograms must not be copied after
// first use.
type Histogram struct {
	shards [NumShards]shard
	rotor  atomic.Uint32
}

// New returns an empty histogram.
func New() *Histogram { return &Histogram{} }

// bucketIndex maps a nanosecond value to its bucket. Values below
// subBuckets get exact buckets; above that, each power of two is split
// into subBuckets linear ranges.
func bucketIndex(v uint64) int {
	if v < subBuckets {
		return int(v)
	}
	e := uint(bits.Len64(v)) - 1 - subBits
	return subBuckets + int(e)<<subBits + int((v>>e)&(subBuckets-1))
}

// bucketUpper is the largest value that lands in bucket idx; quantiles
// report this bound so they overestimate (conservatively) by at most
// one sub-bucket width.
func bucketUpper(idx int) uint64 {
	if idx < subBuckets {
		return uint64(idx)
	}
	e := uint(idx>>subBits) - 1
	sub := uint64(idx & (subBuckets - 1))
	return (subBuckets+sub+1)<<e - 1
}

// Observe records one duration, choosing a shard round-robin. Negative
// durations clamp to zero.
func (h *Histogram) Observe(d time.Duration) {
	h.ObserveShard(d, h.rotor.Add(1))
}

// ObserveShard records one duration into the shard selected by hint
// (reduced modulo NumShards). Callers that hold a stable per-worker
// hint (a pooled scratch, a load-generator worker) avoid even the
// rotor's shared counter: the whole observation is atomic adds on
// counters no other hint touches.
func (h *Histogram) ObserveShard(d time.Duration, hint uint32) {
	v := uint64(0)
	if d > 0 {
		v = uint64(d)
	}
	s := &h.shards[hint&(NumShards-1)]
	s.counts[bucketIndex(v)].Add(1)
	s.count.Add(1)
	s.sum.Add(v)
	for {
		cur := s.max.Load()
		if v <= cur || s.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	var n uint64
	for i := range h.shards {
		n += h.shards[i].count.Load()
	}
	return n
}

// Snapshot is a merged, immutable copy of a histogram's counters.
type Snapshot struct {
	// Count is the total number of observations.
	Count uint64
	// Sum is the exact sum of all observed durations in nanoseconds.
	Sum uint64
	// Max is the exact maximum observed duration in nanoseconds.
	Max uint64

	counts [numBuckets]uint64
}

// Snapshot merges all shards into one consistent-enough view: each
// counter is read atomically, but concurrent writers may land between
// reads, so totals can trail in-flight observations by a few counts.
func (h *Histogram) Snapshot() Snapshot {
	var s Snapshot
	for i := range h.shards {
		sh := &h.shards[i]
		s.Count += sh.count.Load()
		s.Sum += sh.sum.Load()
		if m := sh.max.Load(); m > s.Max {
			s.Max = m
		}
		for b := range sh.counts {
			s.counts[b] += sh.counts[b].Load()
		}
	}
	return s
}

// Quantile returns the q-quantile (q in [0,1]) in nanoseconds, as the
// upper bound of the bucket holding the rank-q observation — at most
// 12.5% above the true value. Returns 0 for an empty snapshot.
func (s *Snapshot) Quantile(q float64) uint64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for idx, c := range s.counts {
		cum += c
		if cum >= rank {
			u := bucketUpper(idx)
			if u > s.Max {
				u = s.Max
			}
			return u
		}
	}
	return s.Max
}

// Mean returns the exact mean in nanoseconds, 0 when empty.
func (s *Snapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}
