package hist

import (
	"math/rand"
	"sync"
	"testing"
	"time"
)

func TestBucketIndexMonotone(t *testing.T) {
	prev := -1
	for _, v := range []uint64{0, 1, 2, 7, 8, 9, 15, 16, 17, 31, 32, 100, 1000, 1 << 20, 1<<40 + 12345, 1<<63 + 9, ^uint64(0)} {
		idx := bucketIndex(v)
		if idx < prev {
			t.Fatalf("bucketIndex(%d) = %d < previous %d", v, idx, prev)
		}
		if idx < 0 || idx >= numBuckets {
			t.Fatalf("bucketIndex(%d) = %d out of range [0,%d)", v, idx, numBuckets)
		}
		prev = idx
	}
}

func TestBucketUpperContainsValue(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100000; i++ {
		v := uint64(rng.Int63()) >> uint(rng.Intn(60))
		idx := bucketIndex(v)
		u := bucketUpper(idx)
		if v > u {
			t.Fatalf("value %d above its bucket %d upper bound %d", v, idx, u)
		}
		if idx+1 < numBuckets && v > bucketUpper(idx+1) {
			t.Fatalf("value %d above next bucket's upper bound", v)
		}
		// Relative error of reporting the upper bound is at most one
		// sub-bucket: 1/subBuckets = 12.5%.
		if v >= subBuckets && float64(u-v) > float64(v)/subBuckets {
			t.Fatalf("value %d: upper bound %d overshoots by more than 12.5%%", v, u)
		}
	}
}

func TestExactCountSumMax(t *testing.T) {
	h := New()
	var sum, max uint64
	for i := 1; i <= 1000; i++ {
		d := time.Duration(i * 37)
		h.Observe(d)
		sum += uint64(d)
		if uint64(d) > max {
			max = uint64(d)
		}
	}
	s := h.Snapshot()
	if s.Count != 1000 || s.Sum != sum || s.Max != max {
		t.Fatalf("snapshot count/sum/max = %d/%d/%d, want 1000/%d/%d", s.Count, s.Sum, s.Max, sum, max)
	}
	if h.Count() != 1000 {
		t.Fatalf("Count() = %d, want 1000", h.Count())
	}
}

func TestQuantileAccuracy(t *testing.T) {
	h := New()
	// Uniform 1..10000 ns, every value once: the q-quantile is q*10000.
	for i := 1; i <= 10000; i++ {
		h.ObserveShard(time.Duration(i), uint32(i))
	}
	s := h.Snapshot()
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999, 1} {
		got := float64(s.Quantile(q))
		want := q * 10000
		if got < want || got > want*1.125+1 {
			t.Fatalf("Quantile(%v) = %v, want within [%v, %v]", q, got, want, want*1.125+1)
		}
	}
	if s.Quantile(1) != 10000 {
		t.Fatalf("Quantile(1) = %d, want clamped to max 10000", s.Quantile(1))
	}
}

func TestEmptyAndNegative(t *testing.T) {
	h := New()
	s := h.Snapshot()
	if s.Quantile(0.99) != 0 || s.Mean() != 0 {
		t.Fatal("empty snapshot should report zeros")
	}
	h.Observe(-time.Second)
	s = h.Snapshot()
	if s.Count != 1 || s.Sum != 0 || s.Quantile(1) != 0 {
		t.Fatalf("negative duration should clamp to zero, got %+v", s)
	}
}

func TestConcurrentObserve(t *testing.T) {
	h := New()
	const workers, per = 16, 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.ObserveShard(time.Duration(i+1), uint32(w))
			}
		}(w)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != workers*per {
		t.Fatalf("count = %d, want %d", s.Count, workers*per)
	}
	var bucketTotal uint64
	for _, c := range s.counts {
		bucketTotal += c
	}
	if bucketTotal != workers*per {
		t.Fatalf("bucket total = %d, want %d", bucketTotal, workers*per)
	}
}

func BenchmarkObserveShard(b *testing.B) {
	h := New()
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		hint := uint32(rand.Int31())
		var d time.Duration
		for pb.Next() {
			d += 97
			h.ObserveShard(d, hint)
		}
	})
}
