package world

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/geom"
)

func carAgent(id string, x, y, heading, speed float64) Agent {
	return Agent{
		ID:     id,
		Pose:   geom.Pose{Pos: geom.V(x, y), Heading: heading},
		Speed:  speed,
		Length: 4.6,
		Width:  1.9,
	}
}

func TestAgentBBoxAndBumpers(t *testing.T) {
	a := carAgent("ego", 10, 0, 0, 20)
	b := a.BBox()
	if b.Length != 4.6 || b.Width != 1.9 {
		t.Errorf("BBox dims = %v x %v", b.Length, b.Width)
	}
	fb := a.FrontBumper()
	if math.Abs(fb.X-12.3) > 1e-9 || math.Abs(fb.Y) > 1e-9 {
		t.Errorf("FrontBumper = %v", fb)
	}
	rb := a.RearBumper()
	if math.Abs(rb.X-7.7) > 1e-9 {
		t.Errorf("RearBumper = %v", rb)
	}
}

func TestAgentVelocity(t *testing.T) {
	a := carAgent("a", 0, 0, 0, 10)
	a.LatVel = 1
	v := a.Velocity()
	if math.Abs(v.X-10) > 1e-9 || math.Abs(v.Y-1) > 1e-9 {
		t.Errorf("Velocity = %v", v)
	}
	a.Pose.Heading = math.Pi / 2
	v = a.Velocity()
	if math.Abs(v.X+1) > 1e-9 || math.Abs(v.Y-10) > 1e-9 {
		t.Errorf("rotated Velocity = %v", v)
	}
}

func TestAgentValidate(t *testing.T) {
	good := carAgent("a", 0, 0, 0, 10)
	if err := good.Validate(); err != nil {
		t.Errorf("valid agent rejected: %v", err)
	}
	bad := good
	bad.ID = ""
	if err := bad.Validate(); err == nil {
		t.Error("empty ID accepted")
	}
	bad = good
	bad.Speed = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative speed accepted")
	}
	bad = good
	bad.Length = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero length accepted")
	}
	bad = good
	bad.Speed = math.NaN()
	if err := bad.Validate(); err == nil {
		t.Error("NaN speed accepted")
	}
}

func TestSnapshotActorLookupAndClone(t *testing.T) {
	s := Snapshot{
		Time: 1.5,
		Ego:  carAgent("ego", 0, 0, 0, 20),
		Actors: []Agent{
			carAgent("a1", 30, 0, 0, 15),
			carAgent("a2", 30, 3.5, 0, 18),
		},
	}
	if _, ok := s.Actor("a2"); !ok {
		t.Error("a2 not found")
	}
	if _, ok := s.Actor("nope"); ok {
		t.Error("phantom actor found")
	}
	c := s.Clone()
	c.Actors[0].Speed = 99
	if s.Actors[0].Speed == 99 {
		t.Error("Clone shares actor storage")
	}
}

func makeTraj() Trajectory {
	return Trajectory{
		ActorID: "a1",
		Prob:    1,
		Points: []TrajectoryPoint{
			{T: 0, Pos: geom.V(0, 0), Heading: 0, Speed: 10, Accel: 0},
			{T: 1, Pos: geom.V(10, 0), Heading: 0, Speed: 10, Accel: 0},
			{T: 2, Pos: geom.V(20, 0), Heading: 0, Speed: 10, Accel: -2},
		},
	}
}

func TestTrajectoryAtInterpolation(t *testing.T) {
	tr := makeTraj()
	p := tr.At(0.5)
	if math.Abs(p.Pos.X-5) > 1e-9 || math.Abs(p.Speed-10) > 1e-9 {
		t.Errorf("At(0.5) = %+v", p)
	}
	p = tr.At(1.5)
	if math.Abs(p.Pos.X-15) > 1e-9 || math.Abs(p.Accel+1) > 1e-9 {
		t.Errorf("At(1.5) = %+v", p)
	}
}

func TestTrajectoryAtEdges(t *testing.T) {
	tr := makeTraj()
	p := tr.At(-1)
	if p.Pos.X != 0 || p.T != -1 {
		t.Errorf("At(-1) = %+v", p)
	}
	// Beyond the end: constant-velocity extrapolation.
	p = tr.At(3)
	if math.Abs(p.Pos.X-30) > 1e-9 || p.Accel != 0 {
		t.Errorf("At(3) = %+v", p)
	}
	empty := Trajectory{}
	if got := empty.At(5); got.T != 5 {
		t.Errorf("empty At = %+v", got)
	}
	if empty.Start() != 0 || empty.End() != 0 {
		t.Error("empty Start/End nonzero")
	}
}

func TestTrajectoryStartEnd(t *testing.T) {
	tr := makeTraj()
	if tr.Start() != 0 || tr.End() != 2 {
		t.Errorf("Start/End = %v/%v", tr.Start(), tr.End())
	}
}

func TestTrajectoryAtMonotone(t *testing.T) {
	tr := makeTraj()
	f := func(raw float64) bool {
		if math.IsNaN(raw) {
			return true
		}
		t1 := math.Mod(math.Abs(raw), 2)
		p1 := tr.At(t1)
		p2 := tr.At(t1 + 0.1)
		return p2.Pos.X >= p1.Pos.X-1e-9 // forward motion is monotone in x
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTrajectoryValidate(t *testing.T) {
	tr := makeTraj()
	if err := tr.Validate(); err != nil {
		t.Errorf("valid trajectory rejected: %v", err)
	}
	bad := makeTraj()
	bad.Prob = 1.5
	if err := bad.Validate(); err == nil {
		t.Error("bad probability accepted")
	}
	bad = makeTraj()
	bad.Points[2].T = 0.5
	if err := bad.Validate(); err == nil {
		t.Error("unsorted times accepted")
	}
}

func TestFromAgent(t *testing.T) {
	a := carAgent("x", 5, 2, 0.1, 12)
	a.Accel = -1
	p := FromAgent(a, 3)
	if p.T != 3 || p.Pos != a.Pose.Pos || p.Speed != 12 || p.Accel != -1 || p.Heading != 0.1 {
		t.Errorf("FromAgent = %+v", p)
	}
}
