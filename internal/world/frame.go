package world

import "repro/internal/geom"

// Frame is a structure-of-arrays view of the ground-truth agents of
// one simulation instant. The simulator's per-step sweeps — collision
// pre-filtering, min-gap bookkeeping, sensor cone tests, occlusion
// rays, perception measurement updates — iterate these flat slices
// linearly instead of walking []Agent values (112 bytes a piece, which
// the profiler bills as runtime.duffcopy), and share the per-agent
// heading trigonometry and footprint geometry that the agent-of-structs
// walk recomputed at every use.
//
// Agent round-trips exactly: Set stores every field unmodified and
// Agent reassembles them unmodified, so materializing []Agent rows at
// the record/API boundary yields byte-identical traces. The cached
// SinH/CosH are exactly geom.SinCos(Heading), and Quad is exactly
// geom.MakeQuad of the agent's BBox.
type Frame struct {
	n int

	IDs     []string
	X, Y    []float64 // world position
	Heading []float64
	SinH    []float64 // sin(Heading), cached once per Set
	CosH    []float64 // cos(Heading)
	Speed   []float64
	Accel   []float64
	LatVel  []float64
	Length  []float64
	Width   []float64
	Radius  []float64 // FootprintRadiusBound(Length, Width)
	Lane    []int
	Static  []bool

	quadOK []bool
	quads  []geom.Quad
	filled []bool // column has been Set at least once (memos valid)
}

// NewFrame returns a frame sized for n agents, all zero-valued until
// Set.
func NewFrame(n int) *Frame {
	return &Frame{
		n:       n,
		IDs:     make([]string, n),
		X:       make([]float64, n),
		Y:       make([]float64, n),
		Heading: make([]float64, n),
		SinH:    make([]float64, n),
		CosH:    make([]float64, n),
		Speed:   make([]float64, n),
		Accel:   make([]float64, n),
		LatVel:  make([]float64, n),
		Length:  make([]float64, n),
		Width:   make([]float64, n),
		Radius:  make([]float64, n),
		Lane:    make([]int, n),
		Static:  make([]bool, n),
		quadOK:  make([]bool, n),
		quads:   make([]geom.Quad, n),
		filled:  make([]bool, n),
	}
}

// Len returns the number of agents in the frame.
func (f *Frame) Len() int { return f.n }

// Set scatters one agent's state into the arrays. Equivalent to
// SetDirect; kept as the boundary-struct convenience.
func (f *Frame) Set(i int, a Agent) {
	f.SetDirect(i, a.ID, a.Pose, a.Speed, a.Accel, a.LatVel, a.Length, a.Width, a.Lane, a.Static)
}

// SetDirect scatters one agent's state from its individual fields,
// avoiding the 112-byte Agent copy on the per-step path. Derived
// columns are refreshed only when their inputs changed since the last
// Set of this index: SinH/CosH when the heading moved, Radius when the
// footprint dims moved (they never do mid-run), and the cached quad
// survives whenever pose and dims are both unchanged — a parked
// obstacle keeps one quad for the whole run. Each memo guards a pure
// function of the compared inputs, so reuse is bit-identical to
// recomputation.
func (f *Frame) SetDirect(i int, id string, pose geom.Pose, speed, accel, latVel, length, width float64, lane int, static bool) {
	if !f.filled[i] {
		f.SinH[i], f.CosH[i] = geom.SinCos(pose.Heading)
		f.Radius[i] = FootprintRadiusBound(length, width)
		f.quadOK[i] = false
		f.filled[i] = true
	} else {
		sameDims := length == f.Length[i] && width == f.Width[i]
		if pose.Heading != f.Heading[i] {
			f.SinH[i], f.CosH[i] = geom.SinCos(pose.Heading)
			f.quadOK[i] = false
		} else if !sameDims || pose.Pos.X != f.X[i] || pose.Pos.Y != f.Y[i] {
			f.quadOK[i] = false
		}
		if !sameDims {
			f.Radius[i] = FootprintRadiusBound(length, width)
		}
	}
	f.IDs[i] = id
	f.X[i] = pose.Pos.X
	f.Y[i] = pose.Pos.Y
	f.Heading[i] = pose.Heading
	f.Speed[i] = speed
	f.Accel[i] = accel
	f.LatVel[i] = latVel
	f.Length[i] = length
	f.Width[i] = width
	f.Lane[i] = lane
	f.Static[i] = static
}

// Agent gathers agent i back into the boundary representation,
// bit-exactly as it was Set.
func (f *Frame) Agent(i int) Agent {
	return Agent{
		ID:     f.IDs[i],
		Pose:   geom.Pose{Pos: geom.Vec2{X: f.X[i], Y: f.Y[i]}, Heading: f.Heading[i]},
		Speed:  f.Speed[i],
		Accel:  f.Accel[i],
		LatVel: f.LatVel[i],
		Length: f.Length[i],
		Width:  f.Width[i],
		Lane:   f.Lane[i],
		Static: f.Static[i],
	}
}

// AppendAgents materializes every agent into dst (reusing its backing
// array) — the record/API boundary view.
func (f *Frame) AppendAgents(dst []Agent) []Agent {
	for i := 0; i < f.n; i++ {
		dst = append(dst, f.Agent(i))
	}
	return dst
}

// Pos returns agent i's position.
func (f *Frame) Pos(i int) geom.Vec2 { return geom.Vec2{X: f.X[i], Y: f.Y[i]} }

// Velocity returns agent i's world-frame velocity, exactly
// Agent.Velocity on the cached trigonometry.
func (f *Frame) Velocity(i int) geom.Vec2 {
	s, c := f.SinH[i], f.CosH[i]
	sp, lv := f.Speed[i], f.LatVel[i]
	return geom.Vec2{X: c*sp + (-s)*lv, Y: s*sp + c*lv}
}

// Quad returns agent i's footprint quad (geom.MakeQuad of its BBox),
// built lazily once per Set and shared by every sweep of the step.
func (f *Frame) Quad(i int) *geom.Quad {
	if !f.quadOK[i] {
		b := geom.OBB{
			Center:  geom.Vec2{X: f.X[i], Y: f.Y[i]},
			Heading: f.Heading[i],
			Length:  f.Length[i],
			Width:   f.Width[i],
		}
		f.quads[i] = geom.MakeQuadTrig(b, f.SinH[i], f.CosH[i])
		f.quadOK[i] = true
	}
	return &f.quads[i]
}
