// Package world defines the shared kinematic state types exchanged
// between the simulator, the perception stack, the trajectory
// predictors, the planner, and the Zhuyi model: agents (the ego and the
// surrounding actors of the paper's Figure 2), world snapshots, and
// timed trajectories.
package world

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/geom"
)

// EgoID is the agent ID reserved for the ego vehicle. The paper refers
// to the AV as the ego; dynamic objects in a scenario are actors.
const EgoID = "ego"

// Agent is the kinematic state of one vehicle (ego or actor) at an
// instant, in the 2-D world frame.
type Agent struct {
	ID     string
	Pose   geom.Pose
	Speed  float64 // longitudinal speed along the heading, m/s, >= 0
	Accel  float64 // longitudinal acceleration, m/s² (negative = braking)
	LatVel float64 // lateral velocity, left-positive, m/s (lane changes)
	Length float64 // bounding-box length, m
	Width  float64 // bounding-box width, m
	Lane   int     // lane index the agent is (mostly) occupying
	Static bool    // true for parked/static obstacles
}

// BBox returns the collision footprint of the agent.
func (a Agent) BBox() geom.OBB { return geom.NewOBB(a.Pose, a.Length, a.Width) }

// FootprintRadiusBound returns a cheap, strict upper bound on the
// footprint's half-diagonal — every point of an L×W box lies within
// this radius of its center: (L+W)/2 ≥ √((L/2)²+(W/2)²), no sqrt
// needed. A fixed margin absorbs floating-point rounding so hot-path
// pre-filters built on the bound (the simulator's collision sweep, the
// sensor cone rejects) stay strictly conservative: borderline cases
// always fall through to the exact geometry, so the pre-filtered
// decision never differs from the unfiltered one.
func FootprintRadiusBound(length, width float64) float64 {
	const margin = 1e-6
	return (length+width)/2 + margin
}

// Velocity returns the world-frame velocity vector: longitudinal speed
// along the heading plus lateral velocity to the left. Left is
// Forward rotated a quarter turn, so one FromAngle serves both terms.
func (a Agent) Velocity() geom.Vec2 {
	fwd := geom.FromAngle(a.Pose.Heading)
	return fwd.Scale(a.Speed).Add(fwd.Perp().Scale(a.LatVel))
}

// FrontBumper returns the world position of the front bumper center.
func (a Agent) FrontBumper() geom.Vec2 {
	return a.Pose.Pos.Add(a.Pose.Forward().Scale(a.Length / 2))
}

// RearBumper returns the world position of the rear bumper center.
func (a Agent) RearBumper() geom.Vec2 {
	return a.Pose.Pos.Sub(a.Pose.Forward().Scale(a.Length / 2))
}

// Validate reports obviously inconsistent states.
func (a Agent) Validate() error {
	if a.ID == "" {
		return fmt.Errorf("agent: empty ID")
	}
	if a.Length <= 0 || a.Width <= 0 {
		return fmt.Errorf("agent %s: non-positive dimensions %vx%v", a.ID, a.Length, a.Width)
	}
	if a.Speed < 0 {
		return fmt.Errorf("agent %s: negative speed %v", a.ID, a.Speed)
	}
	if math.IsNaN(a.Speed) || math.IsNaN(a.Pose.Pos.X) || math.IsNaN(a.Pose.Pos.Y) {
		return fmt.Errorf("agent %s: NaN state", a.ID)
	}
	return nil
}

// Snapshot is the full ground-truth (or perceived) world state at one
// instant: the ego and every surrounding actor.
type Snapshot struct {
	Time   float64
	Ego    Agent
	Actors []Agent
}

// Actor returns the actor with the given ID, if present.
func (s Snapshot) Actor(id string) (Agent, bool) {
	for _, a := range s.Actors {
		if a.ID == id {
			return a, true
		}
	}
	return Agent{}, false
}

// Clone returns a deep copy of the snapshot.
func (s Snapshot) Clone() Snapshot {
	c := s
	c.Actors = make([]Agent, len(s.Actors))
	copy(c.Actors, s.Actors)
	return c
}

// TrajectoryPoint is one timed sample of a predicted or recorded
// trajectory.
type TrajectoryPoint struct {
	T       float64 // absolute time, s
	Pos     geom.Vec2
	Heading float64
	Speed   float64 // scalar speed along Heading, m/s
	Accel   float64 // longitudinal acceleration, m/s²
}

// Trajectory is a time-ordered sequence of states for one agent, with a
// probability weight used by the paper's Equation 4 aggregation. A
// recorded ground-truth future has Prob = 1 and is the only member of
// its set (|T| = 1, paper §3.1).
type Trajectory struct {
	ActorID string
	Prob    float64
	Points  []TrajectoryPoint
}

// Start returns the first sample time, or 0 for an empty trajectory.
func (tr Trajectory) Start() float64 {
	if len(tr.Points) == 0 {
		return 0
	}
	return tr.Points[0].T
}

// End returns the last sample time, or 0 for an empty trajectory.
func (tr Trajectory) End() float64 {
	if len(tr.Points) == 0 {
		return 0
	}
	return tr.Points[len(tr.Points)-1].T
}

// At returns the interpolated state at absolute time t. Times before the
// first sample return the first sample; times beyond the last sample
// extrapolate at constant velocity from the last sample, which keeps the
// Zhuyi search well-defined near the horizon edge.
func (tr Trajectory) At(t float64) TrajectoryPoint {
	n := len(tr.Points)
	if n == 0 {
		return TrajectoryPoint{T: t}
	}
	if t <= tr.Points[0].T {
		p := tr.Points[0]
		p.T = t
		return p
	}
	if t >= tr.Points[n-1].T {
		last := tr.Points[n-1]
		dt := t - last.T
		p := last
		p.T = t
		p.Pos = last.Pos.Add(geom.FromAngle(last.Heading).Scale(last.Speed * dt))
		p.Accel = 0
		return p
	}
	i := sort.Search(n, func(i int) bool { return tr.Points[i].T >= t }) // first >= t
	a, b := tr.Points[i-1], tr.Points[i]
	span := b.T - a.T
	if span <= 0 {
		return b
	}
	u := (t - a.T) / span
	return TrajectoryPoint{
		T:       t,
		Pos:     a.Pos.Lerp(b.Pos, u),
		Heading: a.Heading + (b.Heading-a.Heading)*u,
		Speed:   a.Speed + (b.Speed-a.Speed)*u,
		Accel:   a.Accel + (b.Accel-a.Accel)*u,
	}
}

// Validate reports structural problems: unsorted times or an invalid
// probability.
func (tr Trajectory) Validate() error {
	if tr.Prob < 0 || tr.Prob > 1 || math.IsNaN(tr.Prob) {
		return fmt.Errorf("trajectory %s: probability %v out of [0,1]", tr.ActorID, tr.Prob)
	}
	for i := 1; i < len(tr.Points); i++ {
		if tr.Points[i].T < tr.Points[i-1].T {
			return fmt.Errorf("trajectory %s: unsorted times at index %d", tr.ActorID, i)
		}
	}
	return nil
}

// FromAgent seeds a single-point trajectory at the agent's current
// state, useful as the starting point for predictors.
func FromAgent(a Agent, t float64) TrajectoryPoint {
	return TrajectoryPoint{T: t, Pos: a.Pose.Pos, Heading: a.Pose.Heading, Speed: a.Speed, Accel: a.Accel}
}
